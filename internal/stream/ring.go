// Package stream is the continuous-listening ingest subsystem: the
// layer that turns an endless multichannel sample feed into the
// discrete wake-word decisions the rest of the system serves. Each
// session owns a fixed-capacity multichannel ring buffer fed by
// chunked frame pushes, an incremental STFT/fingerprint path over
// overlapping hops (every hop is transformed exactly once on the
// planned FFT engine; window slide reuses previously transformed
// hops), an online wake-word spotter, and an early-exit cascade that
// fails fast on the cheap gates — frame validation, the energy/VAD
// floor, then the spotter — so the expensive liveness/orientation
// pipeline (GCC over all pairs) only ever runs on a spotted candidate
// window. A SessionManager bounds the session count and evicts idle
// sessions on a timeout, the per-speaker session-tracking shape of
// continuous verification systems.
package stream

import (
	"headtalk/internal/audio"
)

// Ring is a fixed-capacity multichannel sample ring buffer: the
// per-session retention window the spotter's candidate snapshots are
// cut from. Pushes never allocate; a chunk larger than the capacity
// keeps only its newest samples. Ring is not safe for concurrent use —
// each session serializes access with its own lock.
type Ring struct {
	chans  [][]float64
	cap    int
	pos    int // next write index
	filled int
	total  uint64 // samples ever pushed per channel
}

// NewRing returns a ring holding capacity samples per channel.
func NewRing(channels, capacity int) *Ring {
	if channels < 1 || capacity < 1 {
		panic("stream: ring needs at least one channel and one sample of capacity")
	}
	r := &Ring{chans: make([][]float64, channels), cap: capacity}
	for i := range r.chans {
		r.chans[i] = make([]float64, capacity)
	}
	return r
}

// Channels returns the channel count.
func (r *Ring) Channels() int { return len(r.chans) }

// Cap returns the per-channel capacity in samples.
func (r *Ring) Cap() int { return r.cap }

// Len returns the retained sample count (≤ Cap).
func (r *Ring) Len() int { return r.filled }

// Total returns the number of samples ever pushed per channel,
// including those the ring has since overwritten.
func (r *Ring) Total() uint64 { return r.total }

// Push appends one chunk — frame[c] is channel c's samples, all equal
// length (the caller validates shape). The newest samples win when the
// chunk exceeds capacity. Push performs no allocations.
func (r *Ring) Push(frame [][]float64) {
	n := len(frame[0])
	if n == 0 {
		return
	}
	r.total += uint64(n)
	if n >= r.cap {
		// Only the newest cap samples survive; realign to slot 0 so the
		// copy is one straight pass per channel.
		for c, ch := range frame {
			copy(r.chans[c], ch[n-r.cap:])
		}
		r.pos = 0
		r.filled = r.cap
		return
	}
	first := r.cap - r.pos
	if first > n {
		first = n
	}
	for c, ch := range frame {
		copy(r.chans[c][r.pos:], ch[:first])
		copy(r.chans[c], ch[first:])
	}
	r.pos = (r.pos + n) % r.cap
	r.filled += n
	if r.filled > r.cap {
		r.filled = r.cap
	}
}

// Snapshot copies the retained window, oldest sample first, into a
// fresh Recording at the given sample rate. It allocates — sessions
// only snapshot on a spotted candidate, never on the push hot path.
func (r *Ring) Snapshot(sampleRate float64) *audio.Recording {
	n := r.filled
	rec := audio.NewRecording(sampleRate, len(r.chans), n)
	start := r.pos - n
	if start < 0 {
		start += r.cap
	}
	head := r.cap - start
	if head > n {
		head = n
	}
	for c, ch := range r.chans {
		copy(rec.Channels[c][:head], ch[start:start+head])
		copy(rec.Channels[c][head:], ch[:n-head])
	}
	return rec
}
