package stream

import (
	"context"
	"testing"
	"time"

	"headtalk/internal/audio"
	"headtalk/internal/core"
	"headtalk/internal/metrics"
)

func TestTrackerClustersBySignature(t *testing.T) {
	tk := NewTracker(TrackerConfig{Tolerance: 2})
	now := time.Unix(1_700_000_000, 0)

	a1, matched := tk.Observe([]int{3, 5, -2}, &core.Decision{FacingRan: true, FacingScore: 1.2}, now)
	if matched || a1.ID != "spk-1" || a1.Utterances != 1 {
		t.Fatalf("first observation: %+v matched=%v", a1, matched)
	}
	if !a1.Facing || a1.FacingScore != 1.2 {
		t.Fatalf("facing state not carried: %+v", a1)
	}

	// Near signature (mean lag distance 1/3) joins the same track.
	a2, matched := tk.Observe([]int{3, 6, -2}, &core.Decision{FacingRan: true, FacingScore: -0.4}, now.Add(time.Second))
	if !matched || a2.ID != "spk-1" || a2.Utterances != 2 {
		t.Fatalf("second observation: %+v matched=%v", a2, matched)
	}
	if a2.Facing {
		t.Error("facing state should flip with a negative margin")
	}
	if diff := a2.MeanFacing - (1.2-0.4)/2; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("mean facing %g, want %g", a2.MeanFacing, (1.2-0.4)/2)
	}

	// Distant signature opens a new track.
	b, matched := tk.Observe([]int{14, -9, 7}, nil, now.Add(2*time.Second))
	if matched || b.ID != "spk-2" {
		t.Fatalf("distant observation: %+v matched=%v", b, matched)
	}
	if tk.Len() != 2 {
		t.Fatalf("%d tracks, want 2", tk.Len())
	}

	// A decision whose facing stage did not run leaves history alone.
	c, _ := tk.Observe([]int{14, -9, 7}, &core.Decision{FacingRan: false, FacingScore: 99}, now.Add(3*time.Second))
	if c.FacingScore != 0 || c.MeanFacing != 0 {
		t.Errorf("facing history polluted by non-ran stage: %+v", c)
	}
}

func TestTrackerEvictIdle(t *testing.T) {
	tk := NewTracker(TrackerConfig{TrackTimeout: time.Minute})
	now := time.Unix(1_700_000_000, 0)
	tk.Observe([]int{0, 0, 0}, nil, now)
	tk.Observe([]int{20, 20, 20}, nil, now.Add(50*time.Second))
	if n := tk.EvictIdle(now.Add(70 * time.Second)); n != 1 {
		t.Fatalf("evicted %d tracks, want 1 (only the idle one)", n)
	}
	if tk.Len() != 1 {
		t.Fatalf("%d tracks left, want 1", tk.Len())
	}
	// The survivor keeps its identity.
	info, matched := tk.Observe([]int{20, 20, 20}, nil, now.Add(71*time.Second))
	if !matched || info.ID != "spk-2" {
		t.Fatalf("survivor lost: %+v matched=%v", info, matched)
	}
}

func TestTrackerCapacityRecyclesOldest(t *testing.T) {
	tk := NewTracker(TrackerConfig{MaxTracks: 2, Tolerance: 0.5})
	now := time.Unix(1_700_000_000, 0)
	tk.Observe([]int{0, 0}, nil, now)                    // spk-1, oldest
	tk.Observe([]int{10, 10}, nil, now.Add(time.Second)) // spk-2
	c, _ := tk.Observe([]int{-10, -10}, nil, now.Add(2*time.Second))
	if c.ID != "spk-3" || tk.Len() != 2 {
		t.Fatalf("capacity recycle: %+v, %d tracks", c, tk.Len())
	}
	// spk-1 was recycled: its signature now opens a fresh track.
	d, matched := tk.Observe([]int{0, 0}, nil, now.Add(3*time.Second))
	if matched || d.ID == "spk-1" {
		t.Fatalf("recycled track resurrected: %+v matched=%v", d, matched)
	}
}

// TestStreamSpeakerAttribution runs the full push path with tracking
// enabled: a spotted-and-decided candidate carries a speaker, and a
// second utterance from the same position — even under a different
// session ID — maps to the same speaker with accumulated history.
func TestStreamSpeakerAttribution(t *testing.T) {
	reg := metrics.NewRegistry()
	m, err := NewManager(Config{
		SampleRate:   48000,
		Channels:     2,
		Spotter:      testSpotter(t),
		JanitorEvery: -1,
		Metrics:      reg,
		Speakers:     &TrackerConfig{},
		Decide: func(ctx context.Context, rec *audio.Recording, spans SpanDurations) (core.Decision, error) {
			return core.Decision{
				Accepted:    true,
				Reason:      core.ReasonAccepted,
				FacingRan:   true,
				FacingScore: 0.8,
			}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	feed := wakeFeed(t, 48000, 2)
	findDecided := func(results []PushResult) *PushResult {
		for i := range results {
			if results[i].Status == StatusDecided {
				return &results[i]
			}
		}
		return nil
	}

	first := findDecided(pushChunks(t, m, "sessA", feed, 4800))
	if first == nil {
		t.Fatal("wake word never decided")
	}
	if first.Speaker == nil || first.Speaker.ID != "spk-1" {
		t.Fatalf("first candidate speaker: %+v", first.Speaker)
	}
	if !first.Speaker.Facing || first.Speaker.FacingScore != 0.8 {
		t.Fatalf("facing state missing: %+v", first.Speaker)
	}

	// Same feed (same TDoA signature), different session: the tracker
	// recognizes the speaker across sessions and utterances.
	second := findDecided(pushChunks(t, m, "sessB", feed, 4800))
	if second == nil {
		t.Fatal("second wake word never decided")
	}
	if second.Speaker == nil || second.Speaker.ID != "spk-1" {
		t.Fatalf("speaker identity not carried across sessions: %+v", second.Speaker)
	}
	if second.Speaker.Utterances < 2 {
		t.Errorf("utterance count %d, want >= 2", second.Speaker.Utterances)
	}
	if got := counter(t, reg, "stream.speakers.matched"); got == 0 {
		t.Error("stream.speakers.matched never incremented")
	}
	if got := counter(t, reg, "stream.speakers.created"); got != 1 {
		t.Errorf("stream.speakers.created = %d, want 1", got)
	}
}
