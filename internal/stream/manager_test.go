package stream

import (
	"context"
	"errors"
	"math/rand/v2"
	"sync"
	"testing"
	"time"

	"headtalk/internal/audio"
	"headtalk/internal/core"
	"headtalk/internal/metrics"
	"headtalk/internal/speech"
	"headtalk/internal/va"
)

// fakeClock is a mutable test clock safe for concurrent use.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func testSpotter(t testing.TB) *va.Spotter {
	t.Helper()
	s, err := va.NewSpotter(speech.WordComputer, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// wakeFeed synthesizes the wake word at fs with leading/trailing
// silence and replicates it across channels.
func wakeFeed(t testing.TB, fs float64, channels int) [][]float64 {
	t.Helper()
	rng := rand.New(rand.NewPCG(42, 0x5b07734))
	buf := speech.Synthesize(speech.WordComputer, speech.RandomVoice(rng), fs, rng)
	pad := int(0.2 * fs)
	mono := make([]float64, 0, 2*pad+len(buf.Samples))
	mono = append(mono, make([]float64, pad)...)
	mono = append(mono, buf.Samples...)
	mono = append(mono, make([]float64, pad)...)
	feed := make([][]float64, channels)
	for c := range feed {
		feed[c] = mono
	}
	return feed
}

// pushChunks slices feed into chunk-sample pushes and returns every
// result in order.
func pushChunks(t testing.TB, m *Manager, id string, feed [][]float64, chunk int) []PushResult {
	t.Helper()
	var out []PushResult
	scratch := make([][]float64, len(feed))
	for start := 0; start < len(feed[0]); start += chunk {
		end := start + chunk
		if end > len(feed[0]) {
			end = len(feed[0])
		}
		for c := range feed {
			scratch[c] = feed[c][start:end]
		}
		res, err := m.Push(context.Background(), id, scratch)
		if err != nil {
			t.Fatalf("push at sample %d: %v", start, err)
		}
		out = append(out, res)
	}
	return out
}

func counter(t testing.TB, reg *metrics.Registry, name string) uint64 {
	t.Helper()
	return reg.Counter(name).Value()
}

// TestStreamSpotsWakeWordAndDecides is the end-to-end acceptance path:
// a chunked wake-word feed must reach a decision without the caller
// ever buffering the full utterance, and the decision must run on a
// candidate window snapshot (not the whole feed).
func TestStreamSpotsWakeWordAndDecides(t *testing.T) {
	reg := metrics.NewRegistry()
	var decideCalls int
	var gotSamples int
	var gotSpans SpanDurations
	m, err := NewManager(Config{
		SampleRate:   48000,
		Channels:     2,
		Spotter:      testSpotter(t),
		JanitorEvery: -1,
		Metrics:      reg,
		Decide: func(ctx context.Context, rec *audio.Recording, spans SpanDurations) (core.Decision, error) {
			decideCalls++
			gotSamples = rec.Len()
			gotSpans = spans
			return core.Decision{Accepted: true, Reason: core.ReasonAccepted}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	feed := wakeFeed(t, 48000, 2)
	const chunk = 480 // 10 ms pushes
	results := pushChunks(t, m, "alice", feed, chunk)

	var decided *PushResult
	best := -1.0
	for i := range results {
		if s := results[i].SpotScore; s > best && results[i].Status != StatusBuffered {
			best = s
		}
		if results[i].Status == StatusDecided && decided == nil {
			decided = &results[i]
		}
	}
	if decided == nil {
		t.Fatalf("no push decided; best score seen %.3f", best)
	}
	if decided.Decision == nil || !decided.Decision.Accepted {
		t.Fatalf("decided push carries decision %+v", decided.Decision)
	}
	if decideCalls != 1 {
		t.Fatalf("decision pipeline ran %d times, want 1", decideCalls)
	}
	if gotSamples <= 0 || gotSamples > m.windowSamples {
		t.Fatalf("candidate snapshot has %d samples, want 1..%d", gotSamples, m.windowSamples)
	}
	if gotSamples >= len(feed[0]) {
		t.Fatalf("snapshot (%d samples) is as large as the whole feed (%d): streaming buffered the full utterance", gotSamples, len(feed[0]))
	}
	if gotSpans.Ingest < 0 || gotSpans.Spot < 0 {
		t.Fatalf("negative span durations: %+v", gotSpans)
	}
	if got := counter(t, reg, "stream.candidates"); got != 1 {
		t.Fatalf("stream.candidates=%d, want 1", got)
	}
	if got := counter(t, reg, "stream.decisions"); got != 1 {
		t.Fatalf("stream.decisions=%d, want 1", got)
	}
	if got := counter(t, reg, "stream.push.total"); got != uint64(len(results)) {
		t.Fatalf("stream.push.total=%d, want %d", got, len(results))
	}
}

// TestStreamSilenceExitsBeforeSpotter: sub-floor chunks past the
// hangover must exit at the energy gate — no fingerprinting, no
// spotting, no decision, and the matching exit counter increments.
func TestStreamSilenceExitsBeforeSpotter(t *testing.T) {
	reg := metrics.NewRegistry()
	decided := false
	m, err := NewManager(Config{
		Channels:     2,
		Spotter:      testSpotter(t),
		JanitorEvery: -1,
		Metrics:      reg,
		Decide: func(context.Context, *audio.Recording, SpanDurations) (core.Decision, error) {
			decided = true
			return core.Decision{}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	silent := [][]float64{make([]float64, 480), make([]float64, 480)}
	// Pushes within the hangover are still processed (buffered); the
	// rest exit at the energy gate.
	hangoverPushes := m.hangoverSamples / 480
	pushes := hangoverPushes + 15
	var statuses []Status
	for i := 0; i < pushes; i++ {
		res, err := m.Push(context.Background(), "s", silent)
		if err != nil {
			t.Fatal(err)
		}
		statuses = append(statuses, res.Status)
	}
	wantSilent := uint64(pushes - hangoverPushes)
	if got := counter(t, reg, "stream.exit.energy"); got != wantSilent {
		t.Fatalf("stream.exit.energy=%d, want %d (statuses %v)", got, wantSilent, statuses)
	}
	if statuses[len(statuses)-1] != StatusSilent {
		t.Fatalf("last status %v, want silent", statuses[len(statuses)-1])
	}
	if decided {
		t.Fatal("silence reached the decision pipeline")
	}
	if got := counter(t, reg, "stream.exit.spotter"); got != 0 {
		t.Fatalf("silence reached the spotter gate: stream.exit.spotter=%d", got)
	}
}

// TestStreamNoiseExitsAtSpotterGate: audible non-wake audio must exit
// at the spotter gate — never reaching the decision pipeline (and so
// never running GCC over microphone pairs).
func TestStreamNoiseExitsAtSpotterGate(t *testing.T) {
	reg := metrics.NewRegistry()
	decided := false
	m, err := NewManager(Config{
		Channels:     2,
		Spotter:      testSpotter(t),
		JanitorEvery: -1,
		Metrics:      reg,
		Decide: func(context.Context, *audio.Recording, SpanDurations) (core.Decision, error) {
			decided = true
			return core.Decision{}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	rng := rand.New(rand.NewPCG(7, 8))
	noise := make([]float64, 48000*2) // 2 s of audible noise
	for i := range noise {
		noise[i] = rng.NormFloat64() * 0.2
	}
	feed := [][]float64{noise, noise}
	results := pushChunks(t, m, "n", feed, 480)
	if decided {
		t.Fatal("noise reached the decision pipeline")
	}
	if got := counter(t, reg, "stream.exit.spotter"); got == 0 {
		t.Fatal("no push exited at the spotter gate")
	}
	if got := counter(t, reg, "stream.candidates"); got != 0 {
		t.Fatalf("noise produced %d candidates", got)
	}
	sawNoWake := false
	for _, r := range results {
		if r.Status == StatusNoWake {
			sawNoWake = true
			if r.SpotScore >= m.spotThreshold {
				t.Fatalf("no_wake push carries score %.3f ≥ threshold %.3f", r.SpotScore, m.spotThreshold)
			}
		}
	}
	if !sawNoWake {
		t.Fatal("no push reported no_wake")
	}
}

// TestStreamRejectsBadFrames: shape and finiteness violations exit at
// validation, never entering the ring.
func TestStreamRejectsBadFrames(t *testing.T) {
	reg := metrics.NewRegistry()
	m, err := NewManager(Config{Channels: 2, Spotter: testSpotter(t), JanitorEvery: -1, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	bad := [][][]float64{
		{make([]float64, 100)},                      // wrong channel count
		{make([]float64, 100), make([]float64, 99)}, // ragged
		{{}, {}},             // empty
		{{1, nan()}, {1, 2}}, // NaN
		{make([]float64, 200000), make([]float64, 200000)}, // larger than the ring
	}
	for i, frame := range bad {
		res, err := m.Push(context.Background(), "b", frame)
		if !errors.Is(err, ErrBadFrame) {
			t.Fatalf("bad frame %d: err=%v, want ErrBadFrame", i, err)
		}
		if res.Status != StatusInvalid {
			t.Fatalf("bad frame %d: status %v", i, res.Status)
		}
	}
	if got := counter(t, reg, "stream.exit.validate"); got != uint64(len(bad)) {
		t.Fatalf("stream.exit.validate=%d, want %d", got, len(bad))
	}
}

func nan() float64 {
	var z float64
	return z / z
}

// TestManagerEvictionUnderLoad: sessions idle past the timeout are
// evicted; active ones survive; the gauge tracks the live count.
func TestManagerEvictionUnderLoad(t *testing.T) {
	reg := metrics.NewRegistry()
	clk := newFakeClock()
	m, err := NewManager(Config{
		Channels:       1,
		Spotter:        testSpotter(t),
		SessionTimeout: time.Minute,
		JanitorEvery:   -1,
		Metrics:        reg,
		Clock:          clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	chunk := [][]float64{make([]float64, 480)}
	ids := []string{"a", "b", "c", "d"}
	for _, id := range ids {
		if _, err := m.Push(context.Background(), id, chunk); err != nil {
			t.Fatal(err)
		}
	}
	if m.Len() != len(ids) {
		t.Fatalf("Len=%d, want %d", m.Len(), len(ids))
	}
	clk.Advance(50 * time.Second)
	// Keep "a" warm.
	if _, err := m.Push(context.Background(), "a", chunk); err != nil {
		t.Fatal(err)
	}
	clk.Advance(30 * time.Second) // b,c,d now 80s idle; a only 30s
	if n := m.EvictIdle(); n != 3 {
		t.Fatalf("evicted %d, want 3", n)
	}
	if m.Len() != 1 {
		t.Fatalf("Len=%d after eviction, want 1", m.Len())
	}
	if got := reg.Gauge("stream.sessions.active").Value(); got != 1 {
		t.Fatalf("active gauge %d, want 1", got)
	}
	if got := counter(t, reg, "stream.sessions.evicted"); got != 3 {
		t.Fatalf("evicted counter %d, want 3", got)
	}
	// "a" still works without re-creation.
	created := counter(t, reg, "stream.sessions.created")
	if _, err := m.Push(context.Background(), "a", chunk); err != nil {
		t.Fatal(err)
	}
	if got := counter(t, reg, "stream.sessions.created"); got != created {
		t.Fatalf("push to surviving session created a new one (%d → %d)", created, got)
	}
}

// TestManagerSessionLimit: at capacity, creating a session first tries
// an idle sweep, then rejects with ErrSessionLimit.
func TestManagerSessionLimit(t *testing.T) {
	reg := metrics.NewRegistry()
	clk := newFakeClock()
	m, err := NewManager(Config{
		Channels:       1,
		Spotter:        testSpotter(t),
		MaxSessions:    2,
		SessionTimeout: time.Minute,
		JanitorEvery:   -1,
		Metrics:        reg,
		Clock:          clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	chunk := [][]float64{make([]float64, 100)}
	for _, id := range []string{"a", "b"} {
		if _, err := m.Push(context.Background(), id, chunk); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Push(context.Background(), "c", chunk); !errors.Is(err, ErrSessionLimit) {
		t.Fatalf("third session: err=%v, want ErrSessionLimit", err)
	}
	if got := counter(t, reg, "stream.sessions.rejected"); got != 1 {
		t.Fatalf("rejected counter %d, want 1", got)
	}
	// Existing sessions keep working at capacity.
	if _, err := m.Push(context.Background(), "a", chunk); err != nil {
		t.Fatalf("push to existing session at capacity: %v", err)
	}
	// Once a and b go idle, the capacity check itself sweeps them.
	clk.Advance(2 * time.Minute)
	if _, err := m.Push(context.Background(), "c", chunk); err != nil {
		t.Fatalf("create after idle sweep: %v", err)
	}
	if m.Len() != 1 {
		t.Fatalf("Len=%d after sweep+create, want 1", m.Len())
	}
}

// TestManagerEndAndClose covers explicit teardown.
func TestManagerEndAndClose(t *testing.T) {
	m, err := NewManager(Config{Channels: 1, Spotter: testSpotter(t), JanitorEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	chunk := [][]float64{make([]float64, 100)}
	if _, err := m.Push(context.Background(), "a", chunk); err != nil {
		t.Fatal(err)
	}
	if !m.End("a") {
		t.Fatal("End(a) reported missing")
	}
	if m.End("a") {
		t.Fatal("double End(a) reported present")
	}
	m.Close()
	m.Close() // idempotent
	if _, err := m.Push(context.Background(), "a", chunk); !errors.Is(err, ErrClosed) {
		t.Fatalf("push after close: err=%v, want ErrClosed", err)
	}
}

// TestManagerConcurrentPushEvict hammers pushes, ends, and evictions
// from many goroutines — run under -race, it is the data-race canary
// for the map-lock/session-lock split.
func TestManagerConcurrentPushEvict(t *testing.T) {
	clk := newFakeClock()
	m, err := NewManager(Config{
		Channels:       1,
		Spotter:        testSpotter(t),
		MaxSessions:    8,
		SessionTimeout: time.Second,
		JanitorEvery:   -1,
		Clock:          clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	var wg sync.WaitGroup
	ids := []string{"a", "b", "c", "d", "e", "f"}
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			chunk := [][]float64{make([]float64, 480)}
			for i := 0; i < 200; i++ {
				_, err := m.Push(context.Background(), ids[(g+i)%len(ids)], chunk)
				// ErrSessionEnded is the documented outcome of a push
				// racing End/EvictIdle on an acquired session.
				if err != nil && !errors.Is(err, ErrSessionLimit) && !errors.Is(err, ErrClosed) && !errors.Is(err, ErrSessionEnded) {
					t.Errorf("goroutine %d push %d: %v", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			clk.Advance(30 * time.Millisecond)
			m.EvictIdle()
			m.End(ids[i%len(ids)])
		}
	}()
	wg.Wait()
	if m.Len() > 8 {
		t.Fatalf("Len=%d exceeds MaxSessions", m.Len())
	}
}

// TestChaosStalledSessionIsolation: a session stalled inside the
// decision pipeline must not block pushes on other sessions, idle
// sweeps, or manager teardown — the manager lock is never held across
// a decide.
func TestChaosStalledSessionIsolation(t *testing.T) {
	clk := newFakeClock()
	stall := make(chan struct{})
	entered := make(chan struct{})
	m, err := NewManager(Config{
		Channels:       2,
		Spotter:        testSpotter(t),
		SessionTimeout: time.Minute,
		JanitorEvery:   -1,
		Clock:          clk.Now,
		Decide: func(ctx context.Context, rec *audio.Recording, spans SpanDurations) (core.Decision, error) {
			close(entered)
			<-stall // wedge until released
			return core.Decision{Accepted: true, Reason: core.ReasonAccepted}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// Background: push the wake word into "wedged" until its decide
	// stalls.
	feed := wakeFeed(t, 48000, 2)
	done := make(chan error, 1)
	go func() {
		scratch := make([][]float64, 2)
		for start := 0; start < len(feed[0]); start += 480 {
			end := start + 480
			if end > len(feed[0]) {
				end = len(feed[0])
			}
			for c := range feed {
				scratch[c] = feed[c][start:end]
			}
			if _, err := m.Push(context.Background(), "wedged", scratch); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()

	select {
	case <-entered:
	case err := <-done:
		t.Fatalf("feed finished without stalling in decide (err=%v)", err)
	case <-time.After(30 * time.Second):
		t.Fatal("decide never entered")
	}

	// With "wedged" stuck inside its decide (holding its session lock),
	// every other operation must still complete promptly.
	others := make(chan error, 1)
	go func() {
		chunk := [][]float64{make([]float64, 480), make([]float64, 480)}
		for i := 0; i < 50; i++ {
			if _, err := m.Push(context.Background(), "healthy", chunk); err != nil {
				others <- err
				return
			}
		}
		m.EvictIdle()
		m.End("healthy")
		others <- nil
	}()
	select {
	case err := <-others:
		if err != nil {
			t.Fatalf("healthy session blocked by stalled one: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("healthy-session operations starved by the stalled session")
	}

	// The stalled session's timestamp is stale, so an idle sweep may
	// evict it — that must not deadlock either.
	clk.Advance(2 * time.Minute)
	m.EvictIdle()

	close(stall)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("wedged feed after release: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("wedged push never completed after release")
	}
}

// TestStreamSteadyPushAllocs pins the non-candidate push path — the
// overwhelmingly common case in continuous listening — at zero
// steady-state allocations, for both silent and audible chunks.
func TestStreamSteadyPushAllocs(t *testing.T) {
	m, err := NewManager(Config{Channels: 2, Spotter: testSpotter(t), JanitorEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	rng := rand.New(rand.NewPCG(11, 12))
	loud := [][]float64{make([]float64, 480), make([]float64, 480)}
	for c := range loud {
		for i := range loud[c] {
			loud[c][i] = rng.NormFloat64() * 0.2
		}
	}
	silent := [][]float64{make([]float64, 480), make([]float64, 480)}
	ctx := context.Background()

	// Warm both paths: create the session, grow scratch, fill windows.
	for i := 0; i < 200; i++ {
		if _, err := m.Push(ctx, "s", loud); err != nil {
			t.Fatal(err)
		}
	}
	if avg := testing.AllocsPerRun(200, func() { m.Push(ctx, "s", loud) }); avg != 0 {
		t.Errorf("audible push allocates %.1f times per op, want 0", avg)
	}
	for i := 0; i < m.hangoverSamples/480+5; i++ {
		m.Push(ctx, "s", silent)
	}
	if avg := testing.AllocsPerRun(200, func() { m.Push(ctx, "s", silent) }); avg != 0 {
		t.Errorf("silent push allocates %.1f times per op, want 0", avg)
	}
}
