package pool

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// ring is a consistent-hash ring over tenant IDs, used to route
// anonymous traffic (requests that name no tenant) stably: the same
// routing key always lands on the same tenant, and adding or removing
// one tenant only remaps the keys adjacent to its virtual nodes
// instead of reshuffling everything. Rings are immutable once built —
// membership changes rebuild (tenant counts are small; the rebuild is
// microseconds, and immutability means route() takes no lock).
type ring struct {
	points []ringPoint // sorted by hash, ascending
}

type ringPoint struct {
	hash uint32
	id   string
}

// hashKey is FNV-1a, the same dependency-free hash the shard selector
// uses.
func hashKey(key string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(key))
	return h.Sum32()
}

// buildRing places replicas virtual nodes per tenant ID. An empty ID
// list yields an empty ring (route returns "").
func buildRing(ids []string, replicas int) *ring {
	if replicas <= 0 {
		replicas = defaultHashReplicas
	}
	r := &ring{points: make([]ringPoint, 0, len(ids)*replicas)}
	for _, id := range ids {
		for i := 0; i < replicas; i++ {
			r.points = append(r.points, ringPoint{
				hash: hashKey(id + "#" + strconv.Itoa(i)),
				id:   id,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie-break on ID so the ring order is deterministic even on
		// (rare) 32-bit hash collisions.
		return r.points[i].id < r.points[j].id
	})
	return r
}

// route returns the tenant owning key: the first virtual node at or
// clockwise of the key's hash. Empty ring routes to "".
func (r *ring) route(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap around
	}
	return r.points[i].id
}
