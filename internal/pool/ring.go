package pool

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// Ring is a consistent-hash ring over member IDs. The pool uses it to
// route anonymous traffic over its tenants; the cluster layer promotes
// the same ring to node-level tenant ownership (each federation node
// owns the tenants that hash to it). The same routing key always lands
// on the same member, and adding or removing one member only remaps
// the keys adjacent to its virtual nodes instead of reshuffling
// everything. Rings are immutable once built — membership changes
// rebuild (member counts are small; the rebuild is microseconds, and
// immutability means Route takes no lock).
type Ring struct {
	points  []ringPoint // sorted by hash, ascending
	members []string    // distinct member IDs, sorted
}

type ringPoint struct {
	hash uint32
	id   string
}

// hashKey is FNV-1a, the same dependency-free hash the shard selector
// uses.
func hashKey(key string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(key))
	return h.Sum32()
}

// BuildRing places replicas virtual nodes per member ID. An empty ID
// list yields an empty ring (Route returns ""). replicas <= 0 selects
// the default (64).
func BuildRing(ids []string, replicas int) *Ring {
	if replicas <= 0 {
		replicas = defaultHashReplicas
	}
	r := &Ring{points: make([]ringPoint, 0, len(ids)*replicas)}
	seen := make(map[string]bool, len(ids))
	for _, id := range ids {
		if seen[id] {
			continue
		}
		seen[id] = true
		r.members = append(r.members, id)
		for i := 0; i < replicas; i++ {
			r.points = append(r.points, ringPoint{
				hash: hashKey(id + "#" + strconv.Itoa(i)),
				id:   id,
			})
		}
	}
	sort.Strings(r.members)
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie-break on ID so the ring order is deterministic even on
		// (rare) 32-bit hash collisions.
		return r.points[i].id < r.points[j].id
	})
	return r
}

// Route returns the member owning key: the first virtual node at or
// clockwise of the key's hash. Empty ring routes to "".
func (r *Ring) Route(key string) string {
	if r == nil || len(r.points) == 0 {
		return ""
	}
	return r.points[r.search(key)].id
}

// RouteN returns up to n distinct members in ring order starting at
// the key's owner: the owner first, then its successors clockwise.
// The cluster layer uses the second entry as the hedge target for
// idempotent forwards. Fewer than n members yields a shorter slice.
func (r *Ring) RouteN(key string, n int) []string {
	if r == nil || len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	start := r.search(key)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		id := r.points[(start+i)%len(r.points)].id
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}

// search returns the index of the first virtual node at or clockwise
// of the key's hash (callers must check for an empty ring).
func (r *Ring) search(key string) int {
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap around
	}
	return i
}

// Members returns the ring's distinct member IDs, sorted.
func (r *Ring) Members() []string {
	if r == nil {
		return nil
	}
	out := make([]string, len(r.members))
	copy(out, r.members)
	return out
}

// Len returns the distinct member count.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	return len(r.members)
}

// remapProbeKeys is the fixed probe-key count RemapCount samples: big
// enough that a membership change's remapped fraction is visible,
// small enough that a rebuild stays microseconds.
const remapProbeKeys = 64

// RemapCount reports how many of a fixed set of probe keys changed
// owner between two rings — the observable "minimal remap" guarantee.
// Either ring may be nil (every routable probe key then counts as
// remapped).
func RemapCount(old, new_ *Ring) int {
	changed := 0
	for i := 0; i < remapProbeKeys; i++ {
		key := "remap-probe-" + strconv.Itoa(i)
		if old.Route(key) != new_.Route(key) {
			changed++
		}
	}
	return changed
}
