package pool

import (
	"context"
	"errors"
	"math/rand/v2"
	"strconv"
	"strings"
	"testing"

	"headtalk/internal/audio"
	"headtalk/internal/core"
	"headtalk/internal/metrics"
	"headtalk/internal/serve"
)

// testRecording returns a short 4-channel noise burst — enough to run
// the preprocessing stage without training any gate model.
func testRecording(seed uint64) *audio.Recording {
	rng := rand.New(rand.NewPCG(seed, 7))
	rec := audio.NewRecording(48000, 4, 4800)
	for c := range rec.Channels {
		for i := range rec.Channels[c] {
			rec.Channels[c][i] = rng.NormFloat64()
		}
	}
	return rec
}

// testTenantConfig builds a minimal tenant over a fresh Normal-mode
// System (decisions are fast and always accepted).
func testTenantConfig(t *testing.T, id string) TenantConfig {
	t.Helper()
	sys, err := core.NewSystem(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return TenantConfig{ID: id, System: sys, Workers: 2, QueueSize: 8}
}

func newTestPool(t *testing.T, cfg Config, ids ...string) *Pool {
	t.Helper()
	p := New(cfg)
	t.Cleanup(func() { _ = p.Close() })
	for _, id := range ids {
		if _, err := p.AddTenant(testTenantConfig(t, id)); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

func TestPoolAddDecideRemove(t *testing.T) {
	p := newTestPool(t, Config{}, "lab", "home")
	if got := p.Tenants(); len(got) != 2 || got[0] != "home" || got[1] != "lab" {
		t.Fatalf("tenants = %v", got)
	}
	if p.Len() != 2 {
		t.Fatalf("len = %d", p.Len())
	}
	for _, id := range []string{"lab", "home"} {
		d, err := p.Decide(context.Background(), id, testRecording(1))
		if err != nil {
			t.Fatalf("decide %s: %v", id, err)
		}
		if !d.Accepted {
			t.Fatalf("decide %s: %+v", id, d)
		}
	}
	if _, err := p.Decide(context.Background(), "ghost", testRecording(2)); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("unknown tenant decide = %v, want ErrUnknownTenant", err)
	}
	if err := p.RemoveTenant(context.Background(), "lab"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Decide(context.Background(), "lab", testRecording(3)); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("removed tenant decide = %v, want ErrUnknownTenant", err)
	}
	if err := p.RemoveTenant(context.Background(), "lab"); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("double remove = %v, want ErrUnknownTenant", err)
	}
	if p.Len() != 1 {
		t.Fatalf("len after remove = %d", p.Len())
	}
}

func TestPoolDuplicateTenant(t *testing.T) {
	p := newTestPool(t, Config{}, "lab")
	_, err := p.AddTenant(testTenantConfig(t, "lab"))
	if !errors.Is(err, ErrTenantExists) {
		t.Fatalf("duplicate add = %v, want ErrTenantExists", err)
	}
	if !strings.Contains(err.Error(), `"lab"`) {
		t.Fatalf("duplicate add error should name the tenant: %v", err)
	}
}

func TestTenantConfigValidation(t *testing.T) {
	p := newTestPool(t, Config{})
	if _, err := p.AddTenant(TenantConfig{}); err == nil {
		t.Fatal("tenant without ID should fail")
	}
	if _, err := p.AddTenant(TenantConfig{ID: "x"}); err == nil {
		t.Fatal("tenant without System should fail")
	}
}

func TestPoolAnonymousRoutingDisabledByDefault(t *testing.T) {
	p := newTestPool(t, Config{}, "lab")
	if _, err := p.Decide(context.Background(), "", testRecording(4)); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("anonymous decide without fallback = %v, want ErrNoRoute", err)
	}
	if got := p.Route("any"); got != "" {
		t.Fatalf("Route with fallback off = %q, want empty", got)
	}
}

func TestPoolAnonymousHashFallback(t *testing.T) {
	p := newTestPool(t, Config{HashFallback: true}, "lab", "home", "office")

	// The same routing key must always land on the same tenant.
	for _, key := range []string{"alpha", "beta", "gamma", "delta"} {
		first := p.Route(key)
		if first == "" {
			t.Fatalf("key %q unroutable", key)
		}
		for i := 0; i < 5; i++ {
			if got := p.Route(key); got != first {
				t.Fatalf("key %q routed to %q then %q", key, first, got)
			}
		}
	}

	// With enough keys every tenant owns part of the ring.
	owners := map[string]int{}
	for i := 0; i < 300; i++ {
		owners[p.Route("key-"+strconv.Itoa(i))]++
	}
	for _, id := range []string{"lab", "home", "office"} {
		if owners[id] == 0 {
			t.Fatalf("tenant %s owns no keys: %v", id, owners)
		}
	}

	// Removing one tenant only remaps its keys; keys owned by the
	// survivors stay put (the consistent-hash property).
	before := map[string]string{}
	for i := 0; i < 300; i++ {
		k := "key-" + strconv.Itoa(i)
		before[k] = p.Route(k)
	}
	if err := p.RemoveTenant(context.Background(), "office"); err != nil {
		t.Fatal(err)
	}
	for k, owner := range before {
		got := p.Route(k)
		if owner != "office" && got != owner {
			t.Fatalf("key %q moved %q -> %q though its owner survived", k, owner, got)
		}
		if owner == "office" && got == "office" {
			t.Fatalf("key %q still routed to removed tenant", k)
		}
	}

	// Anonymous decisions flow end to end.
	d, err := p.Decide(context.Background(), "", testRecording(5))
	if err != nil || !d.Accepted {
		t.Fatalf("anonymous decide = %+v, %v", d, err)
	}
}

func TestPoolClosedSemantics(t *testing.T) {
	p := newTestPool(t, Config{HashFallback: true}, "lab")
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Decide(context.Background(), "lab", testRecording(6)); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("decide after close = %v, want ErrPoolClosed", err)
	}
	if _, err := p.AddTenant(testTenantConfig(t, "late")); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("add after close = %v, want ErrPoolClosed", err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("double close = %v", err)
	}
	h := p.HealthSnapshot()
	if h.Healthy || !h.Closed || h.TenantCount != 0 {
		t.Fatalf("closed pool health %+v", h)
	}
}

func TestPoolHealthSnapshot(t *testing.T) {
	p := newTestPool(t, Config{})
	if h := p.HealthSnapshot(); h.Healthy {
		t.Fatalf("empty pool should not be healthy: %+v", h)
	}
	p = newTestPool(t, Config{}, "lab", "home")
	h := p.HealthSnapshot()
	if !h.Healthy || h.TenantCount != 2 {
		t.Fatalf("health %+v", h)
	}
	for _, id := range []string{"lab", "home"} {
		th, ok := h.Tenants[id]
		if !ok || !th.Healthy || th.State != "running" {
			t.Fatalf("tenant %s health %+v", id, th)
		}
	}
	// One tenant's tripped breaker degrades the rollup but not the
	// other tenant's entry.
	lab, _ := p.Tenant("lab")
	lab.Engine().TripBreaker()
	h = p.HealthSnapshot()
	if h.Healthy {
		t.Fatalf("pool with open breaker should not roll up healthy: %+v", h)
	}
	if !h.Tenants["home"].Healthy {
		t.Fatalf("home must stay healthy: %+v", h.Tenants["home"])
	}
	if h.Tenants["lab"].Breaker != "open" {
		t.Fatalf("lab breaker %q, want open", h.Tenants["lab"].Breaker)
	}
}

func TestPoolSnapshotPrefixesTenants(t *testing.T) {
	p := newTestPool(t, Config{}, "lab", "home")
	for i := 0; i < 3; i++ {
		if _, err := p.Decide(context.Background(), "lab", testRecording(uint64(10+i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.Decide(context.Background(), "home", testRecording(20)); err != nil {
		t.Fatal(err)
	}
	s := p.Snapshot()
	if got := s.Counters["tenant.lab.serve.completed.total"]; got != 3 {
		t.Fatalf("lab completed = %d, want 3 (counters %v)", got, s.Counters)
	}
	if got := s.Counters["tenant.home.serve.completed.total"]; got != 1 {
		t.Fatalf("home completed = %d, want 1", got)
	}
	per := p.TenantSnapshots()
	if len(per) != 2 {
		t.Fatalf("tenant snapshots %v", per)
	}
	if per["lab"].Counters["serve.completed.total"] != 3 {
		t.Fatalf("per-tenant lab snapshot %v", per["lab"].Counters)
	}

	// The per-tenant map renders as a labeled Prometheus exposition.
	var b strings.Builder
	if err := metrics.WritePrometheusGrouped(&b, "tenant", per); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`serve_completed_total{tenant="lab"} 3`,
		`serve_completed_total{tenant="home"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("grouped exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	if got := BuildRing(nil, 0).Route("k"); got != "" {
		t.Fatalf("empty ring routed to %q", got)
	}
	r := BuildRing([]string{"only"}, 4)
	for _, k := range []string{"a", "b", "c"} {
		if got := r.Route(k); got != "only" {
			t.Fatalf("single-tenant ring routed %q to %q", k, got)
		}
	}
}

func TestRingRouteN(t *testing.T) {
	r := BuildRing([]string{"a", "b", "c"}, 16)
	for _, k := range []string{"k1", "k2", "k3", "k4"} {
		got := r.RouteN(k, 2)
		if len(got) != 2 {
			t.Fatalf("RouteN(%q, 2) = %v", k, got)
		}
		if got[0] != r.Route(k) {
			t.Fatalf("RouteN first entry %q != owner %q", got[0], r.Route(k))
		}
		if got[1] == got[0] {
			t.Fatalf("RouteN successor duplicates owner: %v", got)
		}
	}
	if got := r.RouteN("k", 10); len(got) != 3 {
		t.Fatalf("RouteN capped at member count: %v", got)
	}
	if got := (*Ring)(nil).RouteN("k", 2); got != nil {
		t.Fatalf("nil ring RouteN = %v", got)
	}
}

func TestRingMembershipMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	p := New(Config{Metrics: reg})
	t.Cleanup(func() { _ = p.Close() })
	if _, err := p.AddTenant(testTenantConfig(t, "a")); err != nil {
		t.Fatal(err)
	}
	if _, err := p.AddTenant(testTenantConfig(t, "b")); err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot()
	if got := s.Gauges["pool.ring.members"]; got != 2 {
		t.Fatalf("pool.ring.members = %d, want 2", got)
	}
	afterAdds := s.Counters["pool.ring.remap.total"]
	if afterAdds == 0 {
		t.Fatal("pool.ring.remap.total stayed zero across two adds")
	}
	if err := p.RemoveTenant(context.Background(), "a"); err != nil {
		t.Fatal(err)
	}
	s = reg.Snapshot()
	if got := s.Gauges["pool.ring.members"]; got != 1 {
		t.Fatalf("pool.ring.members after remove = %d, want 1", got)
	}
	if got := s.Counters["pool.ring.remap.total"]; got <= afterAdds {
		t.Fatalf("remap counter did not advance on remove: %d <= %d", got, afterAdds)
	}
}

func TestReplaceTenantSwapsAtomically(t *testing.T) {
	p := newTestPool(t, Config{}, "x")
	oldT, _ := p.Tenant("x")
	newT, err := p.ReplaceTenant(context.Background(), testTenantConfig(t, "x"))
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := p.Tenant("x"); got != newT {
		t.Fatalf("pool still routes to the old tenant")
	}
	// The displaced engine is drained: new submissions fail closed.
	if _, err := oldT.Engine().Decide(context.Background(), testRecording(1)); !errors.Is(err, serve.ErrClosed) {
		t.Fatalf("old engine not drained: %v", err)
	}
	// The replacement serves.
	if _, err := p.Decide(context.Background(), "x", testRecording(2)); err != nil {
		t.Fatalf("replacement tenant decide: %v", err)
	}
	// A failed build must leave the current tenant serving.
	if _, err := p.ReplaceTenant(context.Background(), TenantConfig{ID: "x"}); err == nil {
		t.Fatal("ReplaceTenant with no System should fail")
	}
	if _, err := p.Decide(context.Background(), "x", testRecording(3)); err != nil {
		t.Fatalf("tenant lost after failed replace: %v", err)
	}
}
