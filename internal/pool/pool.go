// Package pool is the multi-tenant serving layer: a sharded pool of
// named tenants, each a (core.System, serve.Engine) pair with its own
// device profile, bounded queue, circuit breaker, metrics registry and
// trace store, behind one Pool API. It is the piece that turns a
// single-array daemon into a fleet front end — heterogeneous devices
// (the paper's D1/D2/D3 prototypes, lab vs. home rooms) share one
// process without sharing any serving state.
//
// Isolation is the design invariant: every queue, breaker, worker set
// and instrument belongs to exactly one tenant, so one tenant's open
// breaker or saturated queue can never reject another tenant's
// requests (internal/pool's fault-injection tests assert this under
// -race). Routing is by explicit tenant ID; anonymous requests can
// optionally fall back to a consistent-hash ring over the current
// membership. Tenants may be added and removed at runtime —
// RemoveTenant unroutes the tenant first, then drains its in-flight
// work exactly once.
package pool

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"headtalk/internal/audio"
	"headtalk/internal/core"
	"headtalk/internal/fusion"
	"headtalk/internal/metrics"
	"headtalk/internal/serve"
	"headtalk/internal/stream"
)

// Typed errors. Route failures wrap these with the offending tenant
// ID, so match with errors.Is.
var (
	// ErrUnknownTenant: the named tenant is not (or no longer) in the
	// pool.
	ErrUnknownTenant = errors.New("pool: unknown tenant")
	// ErrTenantExists: AddTenant was given an ID already in use.
	ErrTenantExists = errors.New("pool: tenant already exists")
	// ErrPoolClosed: the pool has been drained or closed.
	ErrPoolClosed = errors.New("pool: pool closed")
	// ErrNoRoute: an anonymous request (empty tenant ID) could not be
	// routed — hash fallback is disabled or the pool is empty.
	ErrNoRoute = errors.New("pool: no route for anonymous request")
)

const (
	defaultShards       = 8
	defaultHashReplicas = 64
)

// Config assembles a Pool.
type Config struct {
	// Shards is the tenant-map shard count (default 8). Lookups hash
	// the tenant ID onto a shard so hot routing never funnels through
	// one lock.
	Shards int
	// HashFallback routes requests with an empty tenant ID over a
	// consistent-hash ring of the current tenants (keyed by request ID,
	// or a round-robin sequence for keyless calls). Off by default:
	// anonymous traffic then fails with ErrNoRoute.
	HashFallback bool
	// HashReplicas is the virtual-node count per tenant on the ring
	// (default 64).
	HashReplicas int
	// Metrics, when non-nil, receives pool-level instrumentation: the
	// ring-membership gauge (pool.ring.members) and the remap counter
	// (pool.ring.remap.total, the probe keys whose owner changed across
	// AddTenant/RemoveTenant rebuilds) so rebalancing is observable.
	// Per-tenant serving metrics stay in each tenant's own registry.
	Metrics *metrics.Registry
}

// shard is one slice of the tenant map with its own lock.
type shard struct {
	mu      sync.RWMutex
	tenants map[string]*Tenant
}

// Pool owns N named tenants behind a sharded lookup. All methods are
// safe for concurrent use.
type Pool struct {
	cfg    Config
	shards []*shard
	closed atomic.Bool

	// ringMu guards ring rebuilds; the ring itself is immutable, so
	// routing loads it with a read lock and searches lock-free.
	ringMu sync.RWMutex
	ring   *Ring

	// anon sequences routing keys for keyless anonymous Decide calls,
	// spreading them over the ring.
	anon atomic.Uint64

	// ringMembers and ringRemap instrument membership changes (nil
	// without Config.Metrics).
	ringMembers *metrics.Gauge
	ringRemap   *metrics.Counter
}

// New returns an empty pool.
func New(cfg Config) *Pool {
	if cfg.Shards <= 0 {
		cfg.Shards = defaultShards
	}
	if cfg.HashReplicas <= 0 {
		cfg.HashReplicas = defaultHashReplicas
	}
	p := &Pool{cfg: cfg, shards: make([]*shard, cfg.Shards), ring: BuildRing(nil, cfg.HashReplicas)}
	for i := range p.shards {
		p.shards[i] = &shard{tenants: make(map[string]*Tenant)}
	}
	if cfg.Metrics != nil {
		p.ringMembers = cfg.Metrics.Gauge("pool.ring.members")
		p.ringRemap = cfg.Metrics.Counter("pool.ring.remap.total")
	}
	return p
}

// shardFor hashes a tenant ID onto its shard.
func (p *Pool) shardFor(id string) *shard {
	return p.shards[hashKey(id)%uint32(len(p.shards))]
}

// AddTenant builds the tenant's serving stack, starts its engine and
// routes it. It fails with ErrTenantExists (wrapped with the ID) if
// the ID is taken, ErrPoolClosed after Drain/Close.
func (p *Pool) AddTenant(cfg TenantConfig) (*Tenant, error) {
	if p.closed.Load() {
		return nil, ErrPoolClosed
	}
	t, err := newTenant(cfg)
	if err != nil {
		return nil, err
	}
	sh := p.shardFor(t.id)
	sh.mu.Lock()
	if _, dup := sh.tenants[t.id]; dup {
		sh.mu.Unlock()
		_ = t.engine.Close()
		return nil, fmt.Errorf("%w: %q", ErrTenantExists, t.id)
	}
	if p.closed.Load() {
		// Close raced us between the entry check and the insert; do not
		// leak a running engine into a closed pool.
		sh.mu.Unlock()
		_ = t.engine.Close()
		return nil, ErrPoolClosed
	}
	sh.tenants[t.id] = t
	sh.mu.Unlock()
	p.rebuildRing()
	return t, nil
}

// RemoveTenant unroutes the tenant — new requests fail with
// ErrUnknownTenant immediately — then drains its queued and in-flight
// work, bounded by ctx. Already-accepted submissions are still
// delivered exactly once. Concurrent removals of the same tenant
// resolve to one winner; the others return ErrUnknownTenant.
func (p *Pool) RemoveTenant(ctx context.Context, id string) error {
	sh := p.shardFor(id)
	sh.mu.Lock()
	t, ok := sh.tenants[id]
	if ok {
		delete(sh.tenants, id)
	}
	sh.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownTenant, id)
	}
	p.rebuildRing()
	return t.engine.Drain(ctx)
}

// rebuildRing reassembles the consistent-hash ring from the current
// membership. Serialized by ringMu so concurrent add/remove cannot
// interleave a stale membership snapshot over a fresh one. With
// Config.Metrics set it also updates the membership gauge and counts
// remapped probe keys, making each rebalance observable.
func (p *Pool) rebuildRing() {
	p.ringMu.Lock()
	defer p.ringMu.Unlock()
	old := p.ring
	p.ring = BuildRing(p.tenantIDs(), p.cfg.HashReplicas)
	if p.ringMembers != nil {
		p.ringMembers.Set(int64(p.ring.Len()))
	}
	if p.ringRemap != nil {
		if n := RemapCount(old, p.ring); n > 0 {
			p.ringRemap.Add(uint64(n))
		}
	}
}

// tenantIDs snapshots the current membership, sorted.
func (p *Pool) tenantIDs() []string {
	var ids []string
	for _, sh := range p.shards {
		sh.mu.RLock()
		for id := range sh.tenants {
			ids = append(ids, id)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(ids)
	return ids
}

// Tenant looks up a tenant by ID.
func (p *Pool) Tenant(id string) (*Tenant, bool) {
	sh := p.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	t, ok := sh.tenants[id]
	return t, ok
}

// Tenants returns the current tenant IDs, sorted.
func (p *Pool) Tenants() []string { return p.tenantIDs() }

// Len returns the current tenant count.
func (p *Pool) Len() int {
	n := 0
	for _, sh := range p.shards {
		sh.mu.RLock()
		n += len(sh.tenants)
		sh.mu.RUnlock()
	}
	return n
}

// resolve routes a request to its tenant: by explicit ID, or — when
// the ID is empty and hash fallback is on — over the consistent-hash
// ring keyed by routeKey (a fresh sequence number when routeKey is
// empty).
func (p *Pool) resolve(tenantID, routeKey string) (*Tenant, error) {
	if p.closed.Load() {
		return nil, ErrPoolClosed
	}
	if tenantID == "" {
		if !p.cfg.HashFallback {
			return nil, ErrNoRoute
		}
		if routeKey == "" {
			routeKey = "anon-" + strconv.FormatUint(p.anon.Add(1), 10)
		}
		p.ringMu.RLock()
		tenantID = p.ring.Route(routeKey)
		p.ringMu.RUnlock()
		if tenantID == "" {
			return nil, ErrNoRoute
		}
	}
	t, ok := p.Tenant(tenantID)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTenant, tenantID)
	}
	return t, nil
}

// Route reports which tenant an anonymous request with the given
// routing key would land on (diagnostics; "" when unroutable).
func (p *Pool) Route(routeKey string) string {
	if !p.cfg.HashFallback {
		return ""
	}
	p.ringMu.RLock()
	defer p.ringMu.RUnlock()
	return p.ring.Route(routeKey)
}

// ReplaceTenant atomically swaps in a freshly built tenant for
// cfg.ID: the new serving stack is fully constructed and started
// BEFORE the old tenant (if any) is unrouted, so a failed build leaves
// the existing tenant serving untouched — the restore-then-activate
// contract the cluster snapshot/restore path relies on. The displaced
// tenant's queued and in-flight work is drained exactly once, bounded
// by ctx. With no existing tenant it behaves like AddTenant.
func (p *Pool) ReplaceTenant(ctx context.Context, cfg TenantConfig) (*Tenant, error) {
	if p.closed.Load() {
		return nil, ErrPoolClosed
	}
	t, err := newTenant(cfg)
	if err != nil {
		return nil, err
	}
	sh := p.shardFor(t.id)
	sh.mu.Lock()
	if p.closed.Load() {
		// Close raced us; do not leak a running engine into a closed
		// pool.
		sh.mu.Unlock()
		_ = t.engine.Close()
		return nil, ErrPoolClosed
	}
	old := sh.tenants[t.id]
	sh.tenants[t.id] = t
	sh.mu.Unlock()
	p.rebuildRing()
	if old != nil {
		if err := old.engine.Drain(ctx); err != nil {
			return t, fmt.Errorf("pool: draining replaced tenant %q: %w", t.id, err)
		}
	}
	return t, nil
}

// Decide serves one decision through the named tenant's engine,
// blocking for queue space and the decision, bounded by ctx. An empty
// tenantID uses the hash fallback when enabled.
func (p *Pool) Decide(ctx context.Context, tenantID string, rec *audio.Recording) (core.Decision, error) {
	t, err := p.resolve(tenantID, "")
	if err != nil {
		return core.Decision{}, err
	}
	return t.engine.Decide(ctx, rec)
}

// DecideFused serves one multi-array room-level decision through the
// named tenant's engine: every array's capture runs the pipeline, and
// the per-array posteriors are fused (health-weighted) into a single
// accept/reject. An empty tenantID uses the hash fallback when enabled.
func (p *Pool) DecideFused(ctx context.Context, tenantID string, arrays []serve.ArrayInput, cfg fusion.Config) (fusion.RoomDecision, []fusion.ArrayReport, error) {
	t, err := p.resolve(tenantID, "")
	if err != nil {
		return fusion.RoomDecision{}, nil, err
	}
	return t.engine.DecideFused(ctx, arrays, cfg)
}

// PushFrames feeds one multichannel chunk into the named streaming
// session of the named tenant's engine. An empty tenantID uses the
// hash fallback keyed by sessionID, so an anonymous session sticks to
// one tenant for its whole life. Tenants built without
// TenantConfig.Streaming fail with serve.ErrNoStream.
func (p *Pool) PushFrames(ctx context.Context, tenantID, sessionID string, frame [][]float64) (stream.PushResult, error) {
	t, err := p.resolve(tenantID, sessionID)
	if err != nil {
		return stream.PushResult{}, err
	}
	return t.engine.PushFrames(ctx, sessionID, frame)
}

// EndSession removes one streaming session from the named tenant's
// engine, reporting whether it existed. Anonymous routing matches
// PushFrames (keyed by sessionID), so an anonymous end reaches the
// same tenant its pushes did.
func (p *Pool) EndSession(tenantID, sessionID string) (bool, error) {
	t, err := p.resolve(tenantID, sessionID)
	if err != nil {
		return false, err
	}
	return t.engine.EndSession(sessionID)
}

// Submit enqueues a request on the named tenant's engine with Submit
// semantics: never blocks, ErrQueueFull on that tenant's full queue.
// An empty tenantID uses the hash fallback keyed by req.ID.
func (p *Pool) Submit(ctx context.Context, tenantID string, req serve.Request) (<-chan serve.Result, error) {
	t, err := p.resolve(tenantID, req.ID)
	if err != nil {
		return nil, err
	}
	return t.engine.Submit(ctx, req)
}

// Health aggregates per-tenant serving fitness.
type Health struct {
	// Tenants maps tenant ID to its engine health.
	Tenants map[string]serve.Health
	// TenantCount is len(Tenants).
	TenantCount int
	// Healthy is true when the pool is open, has at least one tenant,
	// and every tenant is healthy.
	Healthy bool
	// Closed reports Drain/Close.
	Closed bool
}

// HealthSnapshot reports every tenant's serving fitness plus the
// pool-level rollup.
func (p *Pool) HealthSnapshot() Health {
	h := Health{Tenants: make(map[string]serve.Health), Closed: p.closed.Load()}
	allHealthy := true
	for _, sh := range p.shards {
		sh.mu.RLock()
		for id, t := range sh.tenants {
			th := t.Health()
			h.Tenants[id] = th
			allHealthy = allHealthy && th.Healthy
		}
		sh.mu.RUnlock()
	}
	h.TenantCount = len(h.Tenants)
	h.Healthy = !h.Closed && h.TenantCount > 0 && allHealthy
	return h
}

// Snapshot merges every tenant's metrics into one view, each
// instrument prefixed "tenant.<id>." so tenants never collide.
func (p *Pool) Snapshot() metrics.Snapshot {
	per := p.TenantSnapshots()
	merged := make([]metrics.Snapshot, 0, len(per))
	for id, s := range per {
		merged = append(merged, s.Prefixed("tenant."+id+"."))
	}
	return metrics.MergeSnapshots(merged...)
}

// TenantSnapshots scrapes each tenant's private registry, keyed by
// tenant ID (the shape metrics.WritePrometheusGrouped consumes).
func (p *Pool) TenantSnapshots() map[string]metrics.Snapshot {
	out := make(map[string]metrics.Snapshot)
	for _, id := range p.tenantIDs() {
		if t, ok := p.Tenant(id); ok {
			out[id] = t.registry.Snapshot()
		}
	}
	return out
}

// Drain stops routing, then drains every tenant's engine, bounded by
// ctx. Safe to call more than once; concurrent calls race to remove
// each tenant and each engine still drains exactly once.
func (p *Pool) Drain(ctx context.Context) error {
	p.closed.Store(true)
	var firstErr error
	for _, id := range p.tenantIDs() {
		sh := p.shardFor(id)
		sh.mu.Lock()
		t, ok := sh.tenants[id]
		if ok {
			delete(sh.tenants, id)
		}
		sh.mu.Unlock()
		if !ok {
			continue
		}
		if err := t.engine.Drain(ctx); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("pool: draining tenant %q: %w", id, err)
		}
	}
	p.rebuildRing()
	return firstErr
}

// Close drains with no deadline.
func (p *Pool) Close() error { return p.Drain(context.Background()) }
