package pool

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"headtalk/internal/audio"
	"headtalk/internal/core"
	"headtalk/internal/serve"
)

// TestTenantIsolationUnderFault is the pool's core guarantee, asserted
// under active fault injection: with tenant A's breaker forced open
// AND its queue saturated behind a stalled worker, tenant B's requests
// keep succeeding, its queue-wait p99 stays bounded, and none of A's
// rejections show up in B's instruments.
func TestTenantIsolationUnderFault(t *testing.T) {
	sysA, err := core.NewSystem(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{}, 4)
	release := make(chan struct{})
	defer close(release) // unstick A's worker before pool cleanup drains it

	p := New(Config{})
	t.Cleanup(func() { _ = p.Close() })
	if _, err := p.AddTenant(TenantConfig{
		ID: "faulty", System: sysA, Workers: 1, QueueSize: 2,
		// The hook stalls A's only worker until the test releases it,
		// pinning work in flight so the queue can be saturated.
		FaultHook: func(rec *audio.Recording) *audio.Recording {
			entered <- struct{}{}
			<-release
			return rec
		},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.AddTenant(testTenantConfig(t, "healthy")); err != nil {
		t.Fatal(err)
	}

	// Stall A's worker: submit one request and wait for the hook.
	if _, err := p.Submit(context.Background(), "faulty", serve.Request{ID: "stall", Recording: testRecording(1)}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("worker never reached the fault hook")
	}

	// Saturate A's queue until backpressure trips.
	sawFull := false
	for i := 0; i < 10 && !sawFull; i++ {
		_, err := p.Submit(context.Background(), "faulty", serve.Request{ID: "fill-" + strconv.Itoa(i), Recording: testRecording(uint64(i + 2))})
		sawFull = errors.Is(err, serve.ErrQueueFull)
	}
	if !sawFull {
		t.Fatal("never saw ErrQueueFull while saturating tenant A")
	}

	// Force A's breaker open on top: both failure modes at once.
	faulty, _ := p.Tenant("faulty")
	faulty.Engine().TripBreaker()
	if h := faulty.Health(); h.Breaker != "open" || h.QueueDepth != h.QueueCapacity {
		t.Fatalf("tenant A not in the intended fault state: %+v", h)
	}

	// A keeps rejecting...
	if _, err := p.Submit(context.Background(), "faulty", serve.Request{ID: "x", Recording: testRecording(50)}); !errors.Is(err, serve.ErrQueueFull) {
		t.Fatalf("tenant A submit = %v, want ErrQueueFull", err)
	}

	// ...while every one of B's requests succeeds.
	const n = 50
	for i := 0; i < n; i++ {
		d, err := p.Decide(context.Background(), "healthy", testRecording(uint64(100+i)))
		if err != nil {
			t.Fatalf("tenant B decide %d: %v", i, err)
		}
		if !d.Accepted {
			t.Fatalf("tenant B decision %d: %+v", i, d)
		}
	}

	healthy, _ := p.Tenant("healthy")
	if h := healthy.Health(); !h.Healthy || h.Completed != n {
		t.Fatalf("tenant B health %+v, want healthy with %d completed", h, n)
	}
	snap := healthy.Metrics().Snapshot()
	if snap.Counters["serve.rejected.queue_full"] != 0 || snap.Counters["serve.breaker.rejected"] != 0 {
		t.Fatalf("tenant A's faults leaked into B's counters: %v", snap.Counters)
	}
	wait := snap.Histograms["serve.queue.wait"]
	if wait.Count != n {
		t.Fatalf("tenant B queue-wait count = %d, want %d", wait.Count, n)
	}
	// B has idle workers, so its p99 queue wait must stay far below
	// the seconds tenant A's requests are stalled for.
	if p99 := wait.Quantile(0.99); p99 > 1.0 {
		t.Fatalf("tenant B queue-wait p99 = %gs — tenant A's stall leaked", p99)
	}

	// Pool rollup sees A as unhealthy, B as fine.
	h := p.HealthSnapshot()
	if h.Healthy || !h.Tenants["healthy"].Healthy || h.Tenants["faulty"].Healthy {
		t.Fatalf("pool health %+v", h)
	}
}

// TestRemoveTenantDrainsExactlyOnce races concurrent removers against
// in-flight submissions: exactly one remover wins, accepted requests
// are delivered exactly once each, and post-removal traffic gets a
// typed error.
func TestRemoveTenantDrainsExactlyOnce(t *testing.T) {
	sys, err := core.NewSystem(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	p := New(Config{})
	t.Cleanup(func() { _ = p.Close() })
	if _, err := p.AddTenant(TenantConfig{
		ID: "victim", System: sys, Workers: 2, QueueSize: 64,
		// Keep work in flight long enough for removal to race it.
		FaultHook: func(rec *audio.Recording) *audio.Recording {
			time.Sleep(time.Millisecond)
			return rec
		},
	}); err != nil {
		t.Fatal(err)
	}

	const nReqs = 60
	var accepted, delivered atomic.Int64
	perID := make([]atomic.Int32, nReqs)

	var wg sync.WaitGroup
	for i := 0; i < nReqs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			idx := i
			_, err := p.Submit(context.Background(), "victim", serve.Request{
				ID:        strconv.Itoa(i),
				Recording: testRecording(uint64(i)),
				Callback: func(r serve.Result) {
					perID[idx].Add(1)
					delivered.Add(1)
				},
			})
			switch {
			case err == nil:
				accepted.Add(1)
			case errors.Is(err, ErrUnknownTenant), errors.Is(err, serve.ErrClosed), errors.Is(err, serve.ErrQueueFull):
				// Rejected before acceptance: typed, and no callback owed.
			default:
				t.Errorf("submit %d: unexpected error %v", i, err)
			}
		}(i)
	}

	// Concurrent removers: exactly one must win.
	const nRemovers = 4
	var wins atomic.Int64
	for r := 0; r < nRemovers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := p.RemoveTenant(context.Background(), "victim")
			switch {
			case err == nil:
				wins.Add(1)
			case errors.Is(err, ErrUnknownTenant):
			default:
				t.Errorf("remove: unexpected error %v", err)
			}
		}()
	}
	wg.Wait()

	if wins.Load() != 1 {
		t.Fatalf("removal wins = %d, want exactly 1", wins.Load())
	}
	// The winner's Drain returned, so every accepted request has been
	// delivered — exactly once each.
	if delivered.Load() != accepted.Load() {
		t.Fatalf("delivered %d of %d accepted", delivered.Load(), accepted.Load())
	}
	for i := range perID {
		if c := perID[i].Load(); c > 1 {
			t.Fatalf("request %d delivered %d times", i, c)
		}
	}
	if _, err := p.Submit(context.Background(), "victim", serve.Request{ID: "late", Recording: testRecording(99)}); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("post-removal submit = %v, want ErrUnknownTenant", err)
	}
	if p.Len() != 0 {
		t.Fatalf("pool still holds %d tenants", p.Len())
	}
}
