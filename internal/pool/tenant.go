package pool

import (
	"fmt"
	"time"

	"headtalk/internal/audio"
	"headtalk/internal/core"
	"headtalk/internal/metrics"
	"headtalk/internal/registry"
	"headtalk/internal/serve"
	"headtalk/internal/stream"
	"headtalk/internal/trace"
)

// TenantConfig assembles one tenant: a device/room's own decision
// pipeline plus the serving resources that isolate it from every other
// tenant.
type TenantConfig struct {
	// ID names the tenant; routing, metrics prefixes and debug
	// endpoints all key on it. Required, and unique within a pool.
	ID string
	// System is the tenant's trained HeadTalk controller (required).
	// Tenants deliberately do not share a System: each device profile
	// has its own enrollment, feature geometry and decision log.
	System *core.System
	// Workers and QueueSize size the tenant's private serving engine
	// (defaults as serve.Config: NumCPU workers, queue 64). The queue
	// is per tenant — one tenant saturating its queue never consumes
	// another tenant's submission slots.
	Workers   int
	QueueSize int
	// MaxBatch / GatherDelay configure the tenant engine's batch
	// collector (see serve.Config.MaxBatch): workers gather up to
	// MaxBatch queued requests for at most GatherDelay and run them
	// through the core pipeline's batched DSP schedule. MaxBatch <= 1
	// disables batching (default).
	MaxBatch    int
	GatherDelay time.Duration
	// BreakerThreshold / BreakerCooldown configure the tenant's private
	// circuit breaker (defaults as serve.Config). A tenant's open
	// breaker rejects only that tenant's traffic.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Clock abstracts time for the breaker (tests inject a fake).
	Clock func() time.Time
	// Metrics receives the tenant's instrumentation. Nil creates a
	// private registry (the normal case — the pool's aggregation
	// assumes per-tenant registries; sharing one across tenants would
	// sum their counters into the same instruments).
	Metrics *metrics.Registry
	// TraceCapacity / SlowThreshold size the tenant's private trace
	// store (zero values select the trace package defaults);
	// TraceEnabled starts store-wide tracing on.
	TraceCapacity int
	SlowThreshold time.Duration
	TraceEnabled  bool
	// FaultHook is passed through to the tenant's engine (fault
	// injection in tests; leave nil in production).
	FaultHook func(*audio.Recording) *audio.Recording
	// Streaming, when non-nil, attaches a continuous-listening ingest
	// front end to the tenant's engine (see serve.Config.Streaming).
	// Each tenant gets its own session manager — session IDs are scoped
	// to the tenant, and one tenant's session-limit pressure never
	// rejects another tenant's streams. The config is copied per
	// tenant, so one TenantConfig template may be reused.
	Streaming *stream.Config
	// Models is the tenant's versioned model registry, when the
	// System's models are registry-managed. The pool only holds the
	// handle (for model_status/promote/rollback control paths and
	// snapshot capture); the System resolves its models itself through
	// its provider, so a nil Models simply means the tenant runs a
	// static model set.
	Models *registry.Registry
}

// Tenant is one named (System, Engine) pair inside a Pool, with its
// own queue, circuit breaker, metrics registry and trace store. All
// methods are safe for concurrent use.
type Tenant struct {
	id       string
	sys      *core.System
	engine   *serve.Engine
	registry *metrics.Registry
	traces   *trace.Store
	models   *registry.Registry
}

// newTenant validates cfg, builds the tenant's serving stack and
// starts its engine.
func newTenant(cfg TenantConfig) (*Tenant, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("pool: tenant needs an ID")
	}
	if cfg.System == nil {
		return nil, fmt.Errorf("pool: tenant %q needs a core.System", cfg.ID)
	}
	registry := cfg.Metrics
	if registry == nil {
		registry = metrics.NewRegistry()
	}
	traces := trace.NewStore(cfg.TraceCapacity, cfg.SlowThreshold)
	traces.SetEnabled(cfg.TraceEnabled)
	var streaming *stream.Config
	if cfg.Streaming != nil {
		sc := *cfg.Streaming // per-tenant copy: managers must not share state
		streaming = &sc
	}
	engine, err := serve.NewEngine(serve.Config{
		System:           cfg.System,
		Workers:          cfg.Workers,
		QueueSize:        cfg.QueueSize,
		MaxBatch:         cfg.MaxBatch,
		GatherDelay:      cfg.GatherDelay,
		Metrics:          registry,
		BreakerThreshold: cfg.BreakerThreshold,
		BreakerCooldown:  cfg.BreakerCooldown,
		Clock:            cfg.Clock,
		FaultHook:        cfg.FaultHook,
		Traces:           traces,
		Streaming:        streaming,
	})
	if err != nil {
		return nil, fmt.Errorf("pool: tenant %q: %w", cfg.ID, err)
	}
	if err := engine.Start(); err != nil {
		return nil, fmt.Errorf("pool: tenant %q: %w", cfg.ID, err)
	}
	return &Tenant{
		id:       cfg.ID,
		sys:      cfg.System,
		engine:   engine,
		registry: registry,
		traces:   traces,
		models:   cfg.Models,
	}, nil
}

// ID returns the tenant's name.
func (t *Tenant) ID() string { return t.id }

// Models returns the tenant's versioned model registry, or nil when
// the tenant serves a static model set.
func (t *Tenant) Models() *registry.Registry { return t.models }

// System returns the tenant's HeadTalk controller (to switch modes,
// read its decision log, ...).
func (t *Tenant) System() *core.System { return t.sys }

// Engine returns the tenant's serving engine (ops controls like
// TripBreaker/ResetBreaker live there).
func (t *Tenant) Engine() *serve.Engine { return t.engine }

// Metrics returns the tenant's private registry.
func (t *Tenant) Metrics() *metrics.Registry { return t.registry }

// Traces returns the tenant's private trace store.
func (t *Tenant) Traces() *trace.Store { return t.traces }

// Streams returns the tenant's streaming session manager (nil when the
// tenant was built without TenantConfig.Streaming).
func (t *Tenant) Streams() *stream.Manager { return t.engine.Streams() }

// Health reports the tenant's serving fitness.
func (t *Tenant) Health() serve.Health { return t.engine.HealthSnapshot() }
