package pool

import (
	"context"
	"errors"
	"testing"

	"headtalk/internal/core"
	"headtalk/internal/serve"
	"headtalk/internal/speech"
	"headtalk/internal/stream"
	"headtalk/internal/va"
)

// streamingTenantConfig returns a TenantConfig template with the
// continuous ingest front end attached.
func streamingTenantConfig(t *testing.T, id string) TenantConfig {
	t.Helper()
	sys, err := core.NewSystem(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	spotter, err := va.NewSpotter(speech.WordComputer, 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	return TenantConfig{
		ID:     id,
		System: sys,
		Streaming: &stream.Config{
			SampleRate:   48000,
			Channels:     2,
			Spotter:      spotter,
			JanitorEvery: -1,
		},
	}
}

// TestPoolStreamingPerTenant: each tenant gets its own session
// manager; sessions are scoped per tenant and surface in that tenant's
// prefixed metrics only.
func TestPoolStreamingPerTenant(t *testing.T) {
	p := New(Config{})
	defer p.Close()
	for _, id := range []string{"t1", "t2"} {
		if _, err := p.AddTenant(streamingTenantConfig(t, id)); err != nil {
			t.Fatal(err)
		}
	}
	chunk := [][]float64{make([]float64, 480), make([]float64, 480)}
	// Same session ID on both tenants: two distinct sessions.
	for _, id := range []string{"t1", "t2"} {
		if _, err := p.PushFrames(context.Background(), id, "kitchen", chunk); err != nil {
			t.Fatal(err)
		}
	}
	t1, _ := p.Tenant("t1")
	t2, _ := p.Tenant("t2")
	if t1.Streams() == t2.Streams() {
		t.Fatal("tenants share a session manager")
	}
	if got := t1.Streams().Len(); got != 1 {
		t.Fatalf("t1 has %d sessions, want 1", got)
	}
	snap := p.Snapshot()
	for _, id := range []string{"t1", "t2"} {
		if got := snap.Gauges["tenant."+id+".stream.sessions.active"]; got != 1 {
			t.Fatalf("merged snapshot tenant.%s.stream.sessions.active=%d, want 1", id, got)
		}
	}
	// Ending t1's session leaves t2's alone.
	if ok, err := p.EndSession("t1", "kitchen"); err != nil || !ok {
		t.Fatalf("EndSession(t1) = %v, %v", ok, err)
	}
	if got := t1.Streams().Len(); got != 0 {
		t.Fatalf("t1 has %d sessions after end, want 0", got)
	}
	if got := t2.Streams().Len(); got != 1 {
		t.Fatalf("t2 has %d sessions after t1 end, want 1", got)
	}
}

// TestPoolStreamingRouting: unknown tenants fail, tenants without
// streaming fail with serve.ErrNoStream, and anonymous pushes respect
// the hash-fallback setting.
func TestPoolStreamingRouting(t *testing.T) {
	p := New(Config{})
	defer p.Close()
	chunk := [][]float64{make([]float64, 480), make([]float64, 480)}
	if _, err := p.PushFrames(context.Background(), "ghost", "s", chunk); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("unknown tenant = %v, want ErrUnknownTenant", err)
	}
	if _, err := p.PushFrames(context.Background(), "", "s", chunk); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("anonymous without fallback = %v, want ErrNoRoute", err)
	}
	sys, err := core.NewSystem(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.AddTenant(TenantConfig{ID: "plain", System: sys}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.PushFrames(context.Background(), "plain", "s", chunk); !errors.Is(err, serve.ErrNoStream) {
		t.Fatalf("tenant without streaming = %v, want serve.ErrNoStream", err)
	}
	if _, err := p.EndSession("plain", "s"); !errors.Is(err, serve.ErrNoStream) {
		t.Fatalf("EndSession without streaming = %v, want serve.ErrNoStream", err)
	}
}

// TestPoolStreamingAnonymousSticky: with hash fallback on, an
// anonymous session keyed by its ID always lands on the same tenant.
func TestPoolStreamingAnonymousSticky(t *testing.T) {
	p := New(Config{HashFallback: true})
	defer p.Close()
	for _, id := range []string{"t1", "t2", "t3"} {
		if _, err := p.AddTenant(streamingTenantConfig(t, id)); err != nil {
			t.Fatal(err)
		}
	}
	chunk := [][]float64{make([]float64, 480), make([]float64, 480)}
	for i := 0; i < 5; i++ {
		if _, err := p.PushFrames(context.Background(), "", "livingroom", chunk); err != nil {
			t.Fatal(err)
		}
	}
	total := 0
	var owner *Tenant
	for _, id := range p.Tenants() {
		tn, _ := p.Tenant(id)
		if n := tn.Streams().Len(); n > 0 {
			total += n
			owner = tn
		}
	}
	if total != 1 || owner == nil {
		t.Fatalf("anonymous session landed on %d sessions across tenants, want exactly 1", total)
	}
	if want := p.Route("livingroom"); owner.ID() != want {
		t.Fatalf("session on tenant %q, ring routes %q", owner.ID(), want)
	}
}
