package eval

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"headtalk/internal/dataset"
	"headtalk/internal/ml"
	"headtalk/internal/orientation"
)

// dovFacing labels the 8-angle DoV grid the way §IV-B14 does: 0° and
// ±45° are facing, ±90°/±135°/180° are non-facing.
func dovFacing(angle float64) int {
	if angle >= -45.5 && angle <= 45.5 {
		return orientation.LabelFacing
	}
	return orientation.LabelNonFacing
}

// Fig16CrossUser reproduces §IV-B14 / Fig. 16: leave-one-user-out
// accuracy over the 10-participant corpus with ADASYN upsampling of
// the minority facing class.
func (r *Runner) Fig16CrossUser() (*Table, error) {
	samples, err := r.samples("ds8", dataset.Dataset8(r.opts.Scale), false)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:     "fig16",
		Title:  "Fig. 16: leave-one-user-out accuracy (10 users, ADASYN-balanced)",
		Header: []string{"Held-out user", "Accuracy", "F1"},
	}
	users := map[int]bool{}
	for _, s := range samples {
		users[s.Cond.UserID] = true
	}
	userIDs := make([]int, 0, len(users))
	for u := range users {
		userIDs = append(userIDs, u)
	}
	sort.Ints(userIDs)

	var accs, f1s []float64
	rng := rand.New(rand.NewPCG(r.opts.Seed, 0xADA5))
	for _, holdout := range userIDs {
		var trainX, testX [][]float64
		var trainY, testY []int
		for _, s := range samples {
			l := dovFacing(s.Cond.AngleDeg)
			if s.Cond.UserID == holdout {
				testX = append(testX, s.Features)
				testY = append(testY, l)
			} else {
				trainX = append(trainX, s.Features)
				trainY = append(trainY, l)
			}
		}
		// Standardize before ADASYN so neighbor distances are not
		// dominated by large-scale features, then train the SVM on the
		// balanced set directly.
		var scaler ml.Standardizer
		if err := scaler.Fit(trainX); err != nil {
			return nil, err
		}
		scaledTrain := scaler.TransformAll(trainX)
		balX, balY, err := ml.ADASYN(scaledTrain, trainY, 5, rng)
		if err != nil {
			return nil, fmt.Errorf("eval: ADASYN for user %d: %w", holdout, err)
		}
		svm := ml.NewSVM(10, ml.RBFKernel{Gamma: 1.0 / float64(len(trainX[0]))})
		svm.Seed = r.opts.Seed
		if err := svm.Fit(balX, balY); err != nil {
			return nil, fmt.Errorf("eval: SVM for user %d: %w", holdout, err)
		}
		preds := make([]int, len(testX))
		for i, x := range testX {
			preds[i] = svm.Predict(scaler.Transform(x))
		}
		m, err := ml.EvaluateBinary(testY, preds)
		if err != nil {
			return nil, err
		}
		accs = append(accs, m.Accuracy())
		f1s = append(f1s, m.F1())
		t.AddRow(fmt.Sprintf("P%d", holdout), pct(m.Accuracy()), pct(m.F1()))
	}
	accMean, _ := ml.MeanStd(accs)
	f1Mean, _ := ml.MeanStd(f1s)
	t.AddRow("mean", pct(accMean), pct(f1Mean))
	t.AddNote("paper: 88.66%% average accuracy (F1 85.09%%) across 10 held-out users")
	return t, nil
}

// DoVBaseline reproduces the §II comparison against Ahuja et al.: the
// full HeadTalk feature set (SRP-PHAT + directivity) versus the
// GCC-window-only core (the DoV-style feature vector), trained on one
// repetition and tested on the other across the multi-user corpus.
func (r *Runner) DoVBaseline() (*Table, error) {
	samples, err := r.samples("ds8", dataset.Dataset8(r.opts.Scale), false)
	if err != nil {
		return nil, err
	}
	byRep := map[int][]*dataset.Sample{}
	for _, s := range samples {
		byRep[s.Cond.Rep] = append(byRep[s.Cond.Rep], s)
	}
	if len(byRep) < 2 {
		return nil, fmt.Errorf("eval: DoV comparison needs >= 2 repetitions, have %d", len(byRep))
	}

	// GCC-only is a prefix of the feature vector: 6 pairs × (2*13+1) +
	// 6 TDoAs = 168 features for the 4-mic D2 window.
	const gccOnlyDim = 168
	variants := []struct {
		name string
		dim  int
	}{
		{"HeadTalk (SRP-PHAT + directivity)", 0}, // full vector
		{"Ahuja et al. style (GCC windows + TDoA)", gccOnlyDim},
	}

	t := &Table{
		ID:     "dov",
		Title:  "Comparison vs DoV baseline (train one repetition, test the other)",
		Header: []string{"Feature set", "Accuracy", "F1"},
	}
	reps := make([]int, 0, len(byRep))
	for rep := range byRep {
		reps = append(reps, rep)
	}
	sort.Ints(reps)
	for _, v := range variants {
		var accs, f1s []float64
		for _, trainRep := range reps {
			var trainX, testX [][]float64
			var trainY, testY []int
			for rep, group := range byRep {
				for _, s := range group {
					f := s.Features
					if v.dim > 0 {
						f = f[:v.dim]
					}
					l := dovFacing(s.Cond.AngleDeg)
					if rep == trainRep {
						trainX = append(trainX, f)
						trainY = append(trainY, l)
					} else {
						testX = append(testX, f)
						testY = append(testY, l)
					}
				}
			}
			model, err := orientation.Train(trainX, trainY, orientation.ModelConfig{Seed: r.opts.Seed})
			if err != nil {
				return nil, fmt.Errorf("eval: DoV variant %s: %w", v.name, err)
			}
			m, err := model.Evaluate(testX, testY)
			if err != nil {
				return nil, err
			}
			accs = append(accs, m.Accuracy())
			f1s = append(f1s, m.F1())
		}
		accMean, _ := ml.MeanStd(accs)
		f1Mean, _ := ml.MeanStd(f1s)
		t.AddRow(v.name, pct(accMean), pct(f1Mean))
	}
	t.AddNote("paper: 94.20%% (F1 94.19%%) for HeadTalk vs 92.0%% (F1 91%%) for Ahuja et al. on the DoV data")
	return t, nil
}
