package eval

import "fmt"

// Experiment is a named, runnable reproduction of one paper table or
// figure.
type Experiment struct {
	// Name is the CLI identifier (cmd/experiments -run <name>).
	Name string
	// PaperRef cites the table/figure or section reproduced.
	PaperRef string
	// Run executes the experiment.
	Run func(*Runner) (*Table, error)
}

// Experiments lists every reproduction in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"fig3", "Fig. 3 (spectra by source)", (*Runner).Fig3Spectra},
		{"fig6", "Fig. 6 (GCC/SRP curves)", (*Runner).Fig6Curves},
		{"liveness", "§IV-A1 (human vs mechanical, EER)", (*Runner).LivenessEER},
		{"definitions", "Table III (facing definitions)", (*Runner).Table3Definitions},
		{"perangle", "Fig. 10 (accuracy per angle)", (*Runner).Fig10PerAngle},
		{"classifiers", "§IV-A (model selection)", (*Runner).Classifiers},
		{"trainsize", "Fig. 11 (training-set size)", (*Runner).Fig11TrainingSize},
		{"distance", "§IV-B2 (distance)", (*Runner).Distance},
		{"wakewords", "Fig. 12 (wake words)", (*Runner).Fig12WakeWords},
		{"devices", "Fig. 13 (devices)", (*Runner).Fig13Devices},
		{"environments", "Fig. 14 (lab vs home)", (*Runner).Fig14Environments},
		{"miccount", "Table IV (number of microphones)", (*Runner).Table4MicCount},
		{"placement", "§IV-B7 (device placement)", (*Runner).Placement},
		{"crossenv", "§IV-B8 (cross-environment)", (*Runner).CrossEnvironment},
		{"temporal", "§IV-B9 / Fig. 15 (temporal stability)", (*Runner).Fig15Temporal},
		{"noise", "§IV-B10 (ambient noise)", (*Runner).AmbientNoise},
		{"sitting", "§IV-B11 (sitting vs standing)", (*Runner).Sitting},
		{"loudness", "§IV-B12 (speech loudness)", (*Runner).Loudness},
		{"objects", "§IV-B13 (surrounding objects)", (*Runner).SurroundingObjects},
		{"crossuser", "§IV-B14 / Fig. 16 (cross-user)", (*Runner).Fig16CrossUser},
		{"dov", "§II (comparison vs Ahuja et al.)", (*Runner).DoVBaseline},
		{"userstudy", "§V (user study)", (*Runner).UserStudy},
		{"ablation-phat", "ablation: PHAT weighting", (*Runner).AblationPHAT},
		{"ablation-features", "ablation: feature groups", (*Runner).AblationFeatureGroups},
		{"moving", "extension: moving speakers (§VI gap)", (*Runner).MovingSpeaker},
		{"deviceselect", "extension: multi-VA device selection", (*Runner).DeviceSelection},
		{"overlap", "extension: overlapping talkers (§VI gap)", (*Runner).OverlappingTalkers},
		{"trajectory", "extension: waypoint trajectories (§VI gap)", (*Runner).TrajectoryWaypoints},
		{"fusion", "extension: two-array decision fusion", (*Runner).ArrayFusion},
		{"ensemble", "extension: fused liveness ensemble vs unseen replays", (*Runner).LivenessEnsemble},
	}
}

// Lookup returns the experiment with the given name.
func Lookup(name string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.Name == name {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("eval: unknown experiment %q", name)
}
