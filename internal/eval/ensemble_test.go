package eval

import (
	"testing"

	"headtalk/internal/dataset"
)

// TestEnsembleBeatsSpectralAlone pins the PR's acceptance criterion:
// under the replay-attack protocol (spectral gate trained on Smart TV
// only, tested against unseen replay devices), the fused
// spectral+fingerprint ensemble is strictly more accurate than the
// spectral gate alone.
func TestEnsembleBeatsSpectralAlone(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a liveness detector")
	}
	r := NewRunner(Options{Seed: 7, Scale: dataset.ScaleTiny})
	c, err := r.runLivenessEnsemble()
	if err != nil {
		t.Fatal(err)
	}
	if c.liveTotal == 0 || c.replayTotal == 0 {
		t.Fatalf("degenerate test set: %+v", c)
	}
	sp, ens := c.spectralAccuracy(), c.ensembleAccuracy()
	t.Logf("spectral alone %.3f, fused ensemble %.3f (counts %+v)", sp, ens, c)
	if ens <= sp {
		t.Fatalf("fused ensemble (%.3f) does not strictly beat the spectral gate alone (%.3f)", ens, sp)
	}
	// The fingerprint must not buy its replay rejection by throwing
	// away live traffic wholesale.
	if c.ensembleFalseReject > c.liveTotal/2 {
		t.Fatalf("ensemble rejects most live captures: %d/%d", c.ensembleFalseReject, c.liveTotal)
	}
}

// TestEnsembleRegistryEntry: the experiment is runnable by name from
// the CLI registry.
func TestEnsembleRegistryEntry(t *testing.T) {
	e, err := Lookup("ensemble")
	if err != nil {
		t.Fatal(err)
	}
	if e.Run == nil || e.PaperRef == "" {
		t.Fatalf("registry entry incomplete: %+v", e)
	}
}
