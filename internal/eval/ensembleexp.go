package eval

import (
	"fmt"

	"headtalk/internal/audio"
	"headtalk/internal/dataset"
	"headtalk/internal/liveness"
)

// ensembleCounts is the raw outcome of the ensemble experiment — kept
// separate from the Table so the registry's acceptance criterion
// ("fused ensemble strictly beats the spectral gate alone") is
// assertable in tests without parsing formatted cells.
type ensembleCounts struct {
	liveTotal, replayTotal int
	// spectral-alone and fused verdict errors
	spectralFalseReject, spectralFalseAccept int
	ensembleFalseReject, ensembleFalseAccept int
}

func (c ensembleCounts) spectralAccuracy() float64 {
	total := c.liveTotal + c.replayTotal
	if total == 0 {
		return 0
	}
	return 1 - float64(c.spectralFalseReject+c.spectralFalseAccept)/float64(total)
}

func (c ensembleCounts) ensembleAccuracy() float64 {
	total := c.liveTotal + c.replayTotal
	if total == 0 {
		return 0
	}
	return 1 - float64(c.ensembleFalseReject+c.ensembleFalseAccept)/float64(total)
}

// ensembleGrid sizes the experiment by scale: training pairs for the
// spectral detector, enrollment captures for the fingerprint, and test
// repetitions per (class, distance) cell.
func ensembleGrid(s dataset.Scale) (trainPairs, enrollCaps, testReps int) {
	switch s {
	case dataset.ScalePaper:
		return 12, 12, 4
	case dataset.ScaleTiny:
		return 4, 9, 2
	default:
		return 8, 12, 3
	}
}

// runLivenessEnsemble trains both gates under the replay-attack
// protocol and scores the held-out set, returning raw counts.
//
// The protocol is deliberately adversarial to the spectral gate: it
// trains ONLY on Smart TV replays, then faces replay devices it never
// saw (Sony SRS-X5, Galaxy S21 Ultra). The array fingerprint is
// device-agnostic — it enrolls the array's own live coloration — so
// the fused gate holds exactly where the spectral one generalizes
// worst.
func (r *Runner) runLivenessEnsemble() (ensembleCounts, error) {
	var c ensembleCounts
	trainPairs, enrollCaps, testReps := ensembleGrid(r.opts.Scale)

	// Spectral detector: live vs Smart TV only.
	// Training stays narrow on purpose — one replay device, one
	// distance — so the detector's decision boundary is honest about
	// what a single-device enrollment can know. The test set then
	// probes exactly the generalization gap the fingerprint covers.
	var trainConds []dataset.Condition
	for i := 0; i < trainPairs; i++ {
		base := dataset.Condition{
			Distance: dataset.Distances[0],
			AngleDeg: 0, Rep: i + 1,
		}
		replayed := base
		replayed.Replay = "Smart TV"
		trainConds = append(trainConds, base, replayed)
	}
	train, err := r.samples("ensemble-train-tv", trainConds, true)
	if err != nil {
		return c, err
	}
	ws := make([][]float64, len(train))
	ys := make([]int, len(train))
	for i, s := range train {
		ws[i] = s.Waveform
		ys[i] = dataset.LivenessLabel(s.Cond)
	}
	det := liveness.NewDetector(r.opts.Seed)
	r.progressf("training spectral detector on %d Smart-TV-only samples...", len(ws))
	if err := det.Train(ws, dataset.SampleWaveformRate, ys); err != nil {
		return c, fmt.Errorf("eval: ensemble spectral training: %w", err)
	}

	// Operating point: the spectral threshold is calibrated to the EER
	// on validation data from the SAME enrollment protocol (fresh live
	// + Smart TV pairs). That is all a deployment can calibrate on —
	// and exactly why unseen replay hardware slips through the lone
	// spectral gate at this threshold.
	var valConds []dataset.Condition
	for i := 0; i < trainPairs; i++ {
		base := dataset.Condition{
			Distance: dataset.Distances[0],
			AngleDeg: 0, Rep: 50 + i,
		}
		replayed := base
		replayed.Replay = "Smart TV"
		valConds = append(valConds, base, replayed)
	}
	val, err := r.samples("ensemble-val-tv", valConds, true)
	if err != nil {
		return c, err
	}
	valW := make([][]float64, len(val))
	valY := make([]int, len(val))
	for i, s := range val {
		valW[i] = s.Waveform
		valY[i] = dataset.LivenessLabel(s.Cond)
	}
	_, thr, _, err := det.Evaluate(valW, dataset.SampleWaveformRate, valY)
	if err != nil {
		return c, fmt.Errorf("eval: ensemble threshold calibration: %w", err)
	}
	r.progressf("spectral EER threshold: %.3f", thr)

	// Array fingerprint: the array's live coloration.
	genCap := dataset.NewGenerator(r.opts.Seed + 0xE17)
	recs := make([]*audio.Recording, 0, enrollCaps)
	for i := 0; i < enrollCaps; i++ {
		rec, err := dataset.CaptureRecording(genCap, dataset.Condition{
			Distance: dataset.Distances[i%len(dataset.Distances)],
			AngleDeg: 0, Rep: i + 1,
		})
		if err != nil {
			return c, fmt.Errorf("eval: ensemble fingerprint enrollment: %w", err)
		}
		recs = append(recs, rec)
	}
	// A tight enrollment (1.5 dB tolerance floor, sharp score decay)
	// is what makes the gate bite: the default full-band tolerances
	// are wide enough that a good loudspeaker's coloration hides
	// inside them.
	fp, err := liveness.TrainArrayFingerprint(recs, liveness.FingerprintConfig{
		ToleranceFloorDB: 1.5,
		Softness:         1,
	})
	if err != nil {
		return c, fmt.Errorf("eval: ensemble fingerprint training: %w", err)
	}
	ens := &liveness.Ensemble{Spectral: det, Fingerprint: fp, SpectralThreshold: thr}

	// Held-out set: unseen live captures plus replays through devices
	// the spectral detector never trained on.
	genTest := dataset.NewGenerator(r.opts.Seed + 0xE18)
	score := func(cond dataset.Condition, live bool) error {
		rec, err := dataset.CaptureRecording(genTest, cond)
		if err != nil {
			return err
		}
		mono := rec.Mono()
		spScore, err := det.Score(mono, rec.SampleRate)
		if err != nil {
			return err
		}
		res, err := ens.Check(rec, mono, rec.SampleRate)
		if err != nil {
			return err
		}
		spLive := spScore >= thr
		if live {
			c.liveTotal++
			if !spLive {
				c.spectralFalseReject++
			}
			if !res.Live {
				c.ensembleFalseReject++
			}
		} else {
			c.replayTotal++
			if spLive {
				c.spectralFalseAccept++
			}
			if res.Live {
				c.ensembleFalseAccept++
			}
		}
		return nil
	}
	unseen := []string{"Sony SRS-X5", "Samsung Galaxy S21 Ultra"}
	r.progressf("scoring held-out live + unseen-device replays...")
	for _, dist := range dataset.Distances {
		for rep := 1; rep <= testReps; rep++ {
			base := dataset.Condition{Distance: dist, AngleDeg: 0, Rep: 100 + rep}
			if err := score(base, true); err != nil {
				return c, fmt.Errorf("eval: ensemble live test: %w", err)
			}
			for _, dev := range unseen {
				attack := base
				attack.Replay = dev
				if err := score(attack, false); err != nil {
					return c, fmt.Errorf("eval: ensemble replay test: %w", err)
				}
			}
		}
	}
	return c, nil
}

// LivenessEnsemble reproduces the fused-gate replay-attack protocol:
// the spectral detector trains only on Smart TV replays, then both the
// lone spectral gate and the fused spectral+fingerprint ensemble face
// live captures and replays through unseen loudspeakers.
func (r *Runner) LivenessEnsemble() (*Table, error) {
	c, err := r.runLivenessEnsemble()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "ensemble",
		Title:  "extension: fused liveness ensemble vs unseen replay devices",
		Header: []string{"Gate", "Accuracy", "Replay accepted", "Live rejected"},
	}
	t.AddRow("spectral alone", pct(c.spectralAccuracy()),
		fmt.Sprintf("%d/%d", c.spectralFalseAccept, c.replayTotal),
		fmt.Sprintf("%d/%d", c.spectralFalseReject, c.liveTotal))
	t.AddRow("fused ensemble", pct(c.ensembleAccuracy()),
		fmt.Sprintf("%d/%d", c.ensembleFalseAccept, c.replayTotal),
		fmt.Sprintf("%d/%d", c.ensembleFalseReject, c.liveTotal))
	t.AddNote("spectral gate trained on Smart TV replays only; test replays use Sony SRS-X5 and Galaxy S21 Ultra")
	t.AddNote("criterion: the fused ensemble strictly beats the spectral gate alone on this replay-attack set")
	return t, nil
}
