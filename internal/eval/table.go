package eval

import (
	"fmt"
	"strings"
)

// Table is a formatted experiment result: a title, a header row, data
// rows and free-form notes (e.g. the paper's reference numbers for
// comparison).
type Table struct {
	ID     string // experiment id, e.g. "table3"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a note line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned plain text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", pad))
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	if total > 2 {
		b.WriteString(strings.Repeat("-", total-2))
		b.WriteString("\n")
	}
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavored markdown (used to
// regenerate EXPERIMENTS.md).
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s\n\n", t.Title)
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	seps := make([]string, len(t.Header))
	for i := range seps {
		seps[i] = "---"
	}
	b.WriteString("| " + strings.Join(seps, " | ") + " |\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	b.WriteString("\n")
	return b.String()
}
