package eval

// Multi-speaker extension experiments: overlapping talkers (cocktail
// party interference), waypoint-trajectory motion beyond the two-pose
// walk, and multi-array decision fusion. None of these appear in the
// paper's evaluation — §VI concedes the single-speaker assumption and
// the introduction motivates rooms with several assistant devices —
// so each table states its own accuracy criterion in its notes.

import (
	"fmt"
	"math/rand/v2"

	"headtalk/internal/audio"
	"headtalk/internal/core"
	"headtalk/internal/dataset"
	"headtalk/internal/fusion"
	"headtalk/internal/geom"
	"headtalk/internal/mic"
	"headtalk/internal/orientation"
	"headtalk/internal/room"
	"headtalk/internal/speech"
)

// OverlappingTalkers evaluates the facing classifier on the primary
// talker when a second, non-facing talker speaks over them at varying
// relative levels. The capture superposes both sources (each with its
// own directivity and onset) through CaptureMulti; ground truth is the
// primary talker's facing state.
func (r *Runner) OverlappingTalkers() (*Table, error) {
	trainSamples, err := r.samples("tableIII", r.tableIIIConds(), false)
	if err != nil {
		return nil, err
	}
	model, err := r.trainOn(trainSamples, orientation.Definition4)
	if err != nil {
		return nil, err
	}

	devPos := geom.Vec3{X: 0.40, Y: 2.10, Z: 0.74}
	scene := labScene(devPos, 32)
	rng := rand.New(rand.NewPCG(r.opts.Seed, 0x07E4))

	primary := geom.Vec3{X: 3.40, Y: 2.10, Z: 1.65}
	interferer := geom.Vec3{X: 2.00, Y: 3.40, Z: 1.65}

	levels := []struct {
		label string
		// SPL of the interferer; <= 0 disables it (clean baseline).
		spl float64
	}{
		{"no interferer", 0},
		{"interferer 10 dB below", 60},
		{"interferer at equal level", 70},
	}

	trials := 4
	if r.opts.Scale == dataset.ScaleTiny {
		trials = 2
	}
	t := &Table{
		ID:     "overlap",
		Title:  "Extension: overlapping talkers (interference vs primary facing state)",
		Header: []string{"Interference", "Facing correct", "Non-facing correct", "Accuracy"},
	}
	for _, lv := range levels {
		perState := [2]int{}
		for si, facing := range []bool{true, false} {
			for trial := 0; trial < trials; trial++ {
				az := geom.Azimuth(devPos.Sub(primary))
				if !facing {
					az += 180
				}
				buf := speech.Synthesize(speech.WordComputer, speech.DefaultVoice(), 48000, rng)
				utt := mic.PrepareUtterance(buf, scene.Sim.Bands)
				srcs := []mic.SceneSource{{
					Source:    room.Source{Pos: primary, Azimuth: az, Dir: room.HumanDirectivity{}},
					Utterance: utt,
					SPL:       70,
				}}
				if lv.spl > 0 {
					ibuf := speech.Synthesize(speech.WordComputer, speech.RandomVoice(rng), 48000, rng)
					iutt := mic.PrepareUtterance(ibuf, scene.Sim.Bands)
					srcs = append(srcs, mic.SceneSource{
						// The interferer faces away from the device, so a
						// correct room-level outcome tracks the primary.
						Source:    room.Source{Pos: interferer, Azimuth: geom.Azimuth(devPos.Sub(interferer)) + 180, Dir: room.HumanDirectivity{}},
						Utterance: iutt,
						SPL:       lv.spl,
						OnsetSec:  0.12,
					})
				}
				rec := scene.CaptureMulti(srcs, rng)
				feats, err := extractD2(rec)
				if err != nil {
					return nil, fmt.Errorf("eval: overlap level %q: %w", lv.label, err)
				}
				pred := model.Predict(feats) == orientation.LabelFacing
				if pred == facing {
					perState[si]++
				}
			}
		}
		correct := perState[0] + perState[1]
		t.AddRow(lv.label,
			fmt.Sprintf("%d/%d", perState[0], trials),
			fmt.Sprintf("%d/%d", perState[1], trials),
			pct(float64(correct)/float64(2*trials)))
	}
	t.AddNote("criterion: >= 75%% accuracy with the interferer >= 10 dB below the primary; equal-level overlap is reported for reference")
	t.AddNote("extension beyond the paper: §VI assumes a single active talker")
	return t, nil
}

// TrajectoryWaypoints evaluates the static-trained model on
// multi-waypoint motion paths — an L-shaped walk and a late head turn —
// that the two-pose CaptureMoving walk cannot express.
func (r *Runner) TrajectoryWaypoints() (*Table, error) {
	trainSamples, err := r.samples("tableIII", r.tableIIIConds(), false)
	if err != nil {
		return nil, err
	}
	model, err := r.trainOn(trainSamples, orientation.Definition4)
	if err != nil {
		return nil, err
	}

	devPos := geom.Vec3{X: 0.40, Y: 2.10, Z: 0.74}
	scene := labScene(devPos, 32)
	rng := rand.New(rand.NewPCG(r.opts.Seed, 0x774A))

	// Paths stay near the device's on-axis training geometry (the tiny
	// corpus covers one radial), so the static-trained model's facing
	// margin is meaningful along the whole walk.
	mouth := func(x, y float64) geom.Vec3 { return geom.Vec3{X: x, Y: y, Z: 1.65} }
	lPath := []geom.Vec3{mouth(4.5, 1.7), mouth(3.5, 1.7), mouth(3.4, 2.4)}
	// The cross path's walking direction stays ~90° off the device, so
	// facing the walking direction must read as non-facing.
	lCross := []geom.Vec3{mouth(3.5, 1.2), mouth(3.5, 2.1), mouth(3.3, 3.0)}
	stand := mouth(3.4, 2.1)

	faceDev := func(p geom.Vec3) room.Source {
		return room.Source{Pos: p, Azimuth: geom.Azimuth(devPos.Sub(p)), Dir: room.HumanDirectivity{}}
	}
	facePath := func(p, next geom.Vec3) room.Source {
		return room.Source{Pos: p, Azimuth: geom.Azimuth(next.Sub(p)), Dir: room.HumanDirectivity{}}
	}
	awayDev := func(p geom.Vec3) room.Source {
		s := faceDev(p)
		s.Azimuth += 180
		return s
	}

	scenarios := []struct {
		label      string
		traj       room.Trajectory
		wantFacing bool
	}{
		{"L-walk, facing device throughout", room.Trajectory{Waypoints: []room.Source{
			faceDev(lPath[0]), faceDev(lPath[1]), faceDev(lPath[2]),
		}}, true},
		{"cross-walk, facing walking direction", room.Trajectory{Waypoints: []room.Source{
			facePath(lCross[0], lCross[1]), facePath(lCross[1], lCross[2]), facePath(lCross[1], lCross[2]),
		}}, false},
		{"stationary, turns to device only at the end", room.Trajectory{Waypoints: []room.Source{
			awayDev(stand), awayDev(stand), faceDev(stand),
		}}, false},
	}

	trials := 6
	if r.opts.Scale == dataset.ScaleTiny {
		trials = 2
	}
	t := &Table{
		ID:     "trajectory",
		Title:  "Extension: waypoint trajectories (static-trained Definition-4 model)",
		Header: []string{"Scenario", "Expected", "Classified facing", "Agreement"},
	}
	for _, sc := range scenarios {
		correct, facingVotes := 0, 0
		for trial := 0; trial < trials; trial++ {
			buf := speech.Synthesize(speech.WordComputer, speech.DefaultVoice(), 48000, rng)
			utt := mic.PrepareUtterance(buf, scene.Sim.Bands)
			traj := sc.traj
			rec := scene.CaptureMulti([]mic.SceneSource{{
				Trajectory: &traj,
				Segments:   7,
				Utterance:  utt,
				SPL:        70,
			}}, rng)
			feats, err := extractD2(rec)
			if err != nil {
				return nil, fmt.Errorf("eval: trajectory scenario %q: %w", sc.label, err)
			}
			pred := model.Predict(feats) == orientation.LabelFacing
			if pred {
				facingVotes++
			}
			if pred == sc.wantFacing {
				correct++
			}
		}
		expected := "non-facing"
		if sc.wantFacing {
			expected = "facing"
		}
		t.AddRow(sc.label, expected,
			fmt.Sprintf("%d/%d", facingVotes, trials),
			pct(float64(correct)/float64(trials)))
	}
	t.AddNote("criterion: >= 70%% agreement on the device-facing walk and the late-turn case; cross-walk agreement is the reported §VI stress number")
	t.AddNote("extension beyond the paper: §VI lists moving speakers as uncovered; paths here exceed the two-pose walk")
	return t, nil
}

// fusionCounts runs the two-array fusion scenario and returns correct
// room-decision counts for each array alone and for the fused vote.
// Arrays live at placements A and C; each addressed trial degrades the
// far array (two dead channels in the paper's 4-mic subset), so a
// fail-closed single array loses exactly the trials fusion recovers by
// re-weighting toward the healthy array.
func (r *Runner) fusionCounts() (singleA, singleC, fused, total int, err error) {
	// Each array enrolls its own model on captures taken at its own
	// placement — orientation features encode the direction of arrival,
	// so a model is specific to where its array stands in the room.
	samplesA, err := r.samples("tableIII", r.tableIIIConds(), false)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	modelA, err := r.trainOn(samplesA, orientation.Definition4)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	condsC := r.tableIIIConds()
	for i := range condsC {
		condsC[i].Placement = "C"
	}
	samplesC, err := r.samples("fusionC", condsC, false)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	modelC, err := r.trainOn(samplesC, orientation.Definition4)
	if err != nil {
		return 0, 0, 0, 0, err
	}

	posA := geom.Vec3{X: 0.40, Y: 2.10, Z: 0.74}
	posC := geom.Vec3{X: 3.00, Y: 3.60, Z: 0.75}
	sceneA := labScene(posA, 32)
	sceneC := labScene(posC, 32)
	rng := rand.New(rand.NewPCG(r.opts.Seed, 0xF05E))

	// Speaker spots ~3 m out along each device's outward axis (A faces
	// +X, C faces -Y), matching the enrollment grid's radial.
	spotsA := []geom.Vec3{{X: 3.40, Y: 2.10, Z: 1.65}, {X: 3.30, Y: 2.25, Z: 1.65}}
	spotsC := []geom.Vec3{{X: 3.00, Y: 0.60, Z: 1.65}, {X: 2.85, Y: 0.75, Z: 1.65}}

	reps := 2
	if r.opts.Scale == dataset.ScaleTiny {
		reps = 1
	}

	type trial struct {
		spot       geom.Vec3
		facingAz   float64
		wantAccept bool
		// degrade names the array whose capture loses two subset
		// channels ("" keeps both healthy).
		degrade string
	}
	var trials []trial
	for i := 0; i < reps; i++ {
		for _, s := range spotsA {
			trials = append(trials, trial{s, geom.Azimuth(posA.Sub(s)), true, "C"})
		}
		for _, s := range spotsC {
			trials = append(trials, trial{s, geom.Azimuth(posC.Sub(s)), true, "A"})
		}
		// Facing away from the addressed device (both arrays healthy):
		// the room must reject.
		trials = append(trials, trial{spotsA[0], geom.Azimuth(posA.Sub(spotsA[0])) + 180, false, ""})
		trials = append(trials, trial{spotsC[0], geom.Azimuth(posC.Sub(spotsC[0])) + 180, false, ""})
	}

	subset := mic.DeviceD2().DefaultSubset()
	for _, tr := range trials {
		buf := speech.Synthesize(speech.WordComputer, speech.DefaultVoice(), 48000, rng)
		uttA := mic.PrepareUtterance(buf, sceneA.Sim.Bands)
		src := room.Source{Pos: tr.spot, Azimuth: tr.facingAz, Dir: room.HumanDirectivity{}}
		recA := sceneA.Capture(src, uttA, 70, rng)
		recC := sceneC.Capture(src, uttA, 70, rng)
		if tr.degrade == "A" {
			killChannels(recA.Channels, subset[:2])
		}
		if tr.degrade == "C" {
			killChannels(recC.Channels, subset[:2])
		}

		repA, okA, err := fusionArrayDecide(modelA, "A", recA)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		repC, okC, err := fusionArrayDecide(modelC, "C", recC)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		roomDec := fusion.Fuse([]fusion.ArrayReport{repA, repC}, fusion.Config{})

		total++
		if okA == tr.wantAccept {
			singleA++
		}
		if okC == tr.wantAccept {
			singleC++
		}
		if roomDec.Accepted == tr.wantAccept {
			fused++
		}
	}
	return singleA, singleC, fused, total, nil
}

// killChannels silences the given channels, emulating dead MEMS
// elements for mic.AssessHealth to flag.
func killChannels(channels [][]float64, idx []int) {
	for _, i := range idx {
		for j := range channels[i] {
			channels[i][j] = 0
		}
	}
}

// fusionArrayDecide is one array's serving-side outcome: health check,
// fail closed when any subset channel is degraded, otherwise an
// orientation margin from the shared model. The returned bool is the
// array's standalone accept decision.
func fusionArrayDecide(model *orientation.Model, id string, rec *audio.Recording) (fusion.ArrayReport, bool, error) {
	h := mic.AssessHealth(rec, mic.HealthConfig{})
	rep := fusion.ArrayReport{
		ArrayID:  id,
		Channels: len(rec.Channels),
		Weight:   fusion.HealthWeight(h),
	}
	if h.Degraded() > 0 {
		rep.Decision = core.Decision{Reason: core.ReasonDegraded, DegradedChannels: h.Degraded()}
		return rep, false, nil
	}
	feats, err := extractD2(rec)
	if err != nil {
		return rep, false, fmt.Errorf("eval: fusion array %s: %w", id, err)
	}
	margin := model.Score(feats)
	d := core.Decision{FacingRan: true, FacingScore: margin}
	if margin > 0 {
		d.Accepted = true
		d.Reason = core.ReasonAccepted
	} else {
		d.Reason = core.ReasonNotFacing
	}
	rep.Decision = d
	return rep, d.Accepted, nil
}

// ArrayFusion evaluates the room-level two-array fused decision against
// each array operating alone. Addressed trials degrade the far array,
// so the fail-closed single array rejects utterances it should accept;
// fusion drops the degraded report and follows the healthy array.
func (r *Runner) ArrayFusion() (*Table, error) {
	singleA, singleC, fused, total, err := r.fusionCounts()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fusion",
		Title:  "Extension: two-array decision fusion (health-weighted room vote)",
		Header: []string{"Decider", "Correct", "Accuracy"},
	}
	t.AddRow("array A alone", fmt.Sprintf("%d/%d", singleA, total), pct(float64(singleA)/float64(total)))
	t.AddRow("array C alone", fmt.Sprintf("%d/%d", singleC, total), pct(float64(singleC)/float64(total)))
	t.AddRow("fused room decision", fmt.Sprintf("%d/%d", fused, total), pct(float64(fused)/float64(total)))
	t.AddNote("criterion: fused accuracy strictly exceeds the best single array")
	t.AddNote("each addressed trial kills two subset channels on the far array; singles fail closed, fusion re-weights by mic.AssessHealth")
	return t, nil
}
