package eval

import (
	"fmt"
	"math/rand/v2"

	"headtalk/internal/dataset"
	"headtalk/internal/liveness"
)

// LivenessEER reproduces §IV-A1: pretrain the liveness detector on the
// spoof corpus (the ASVspoof surrogate), test cold on the Dataset-1/2
// replay data, then incrementally adapt on 20% of it (20:20:60
// train/validation/test split) and re-evaluate.
func (r *Runner) LivenessEER() (*Table, error) {
	spoof, err := r.samples("spoofcorpus", dataset.SpoofCorpus(r.opts.Scale), true)
	if err != nil {
		return nil, err
	}

	// The paper's "unseen" set: live human samples from Dataset-1 and
	// Sony replays from Dataset-2 (one cell each at the reduced
	// scale).
	humanConds := dataset.Dataset1Slice(r.opts.Scale, "lab", "D2", "Computer", false)
	replayConds := dataset.Dataset2(r.opts.Scale)
	human, err := r.samples("liveness-human", humanConds, true)
	if err != nil {
		return nil, err
	}
	replay, err := r.samples("liveness-replay", replayConds, true)
	if err != nil {
		return nil, err
	}
	// Balance the classes.
	n := len(human)
	if len(replay) < n {
		n = len(replay)
	}
	unseen := append(append([]*dataset.Sample{}, human[:n]...), replay[:n]...)

	// Split the spoof corpus 80/20 for pretraining validation.
	rng := rand.New(rand.NewPCG(r.opts.Seed, 0xA5F))
	perm := rng.Perm(len(spoof))
	cut := len(spoof) * 8 / 10
	var trainW, valW [][]float64
	var trainY, valY []int
	for i, pi := range perm {
		s := spoof[pi]
		l := dataset.LivenessLabel(s.Cond)
		if i < cut {
			trainW = append(trainW, s.Waveform)
			trainY = append(trainY, l)
		} else {
			valW = append(valW, s.Waveform)
			valY = append(valY, l)
		}
	}

	det := liveness.NewDetector(r.opts.Seed)
	r.progressf("training liveness detector on %d spoof-corpus samples...", len(trainW))
	if err := det.Train(trainW, dataset.SampleWaveformRate, trainY); err != nil {
		return nil, fmt.Errorf("eval: liveness pretraining: %w", err)
	}

	t := &Table{
		ID:     "liveness",
		Title:  "§IV-A1: liveness detection (wav2vec2 stand-in, pretrain -> adapt protocol)",
		Header: []string{"Stage", "Test set", "Accuracy", "EER"},
	}
	evalOn := func(stage, name string, set []*dataset.Sample) error {
		ws := make([][]float64, len(set))
		ys := make([]int, len(set))
		for i, s := range set {
			ws[i] = s.Waveform
			ys[i] = dataset.LivenessLabel(s.Cond)
		}
		eer, _, acc, err := det.Evaluate(ws, dataset.SampleWaveformRate, ys)
		if err != nil {
			return fmt.Errorf("eval: liveness %s: %w", stage, err)
		}
		t.AddRow(stage, name, pct(acc), pct(eer))
		return nil
	}

	valSet := make([]*dataset.Sample, 0, len(valW))
	for _, pi := range perm[cut:] {
		valSet = append(valSet, spoof[pi])
	}
	if err := evalOn("pretrained", "spoof-corpus validation", valSet); err != nil {
		return nil, err
	}
	if err := evalOn("pretrained", "unseen Dataset-1+2", unseen); err != nil {
		return nil, err
	}

	// Incremental adaptation: 20:20:60 split of the unseen data.
	perm2 := rng.Perm(len(unseen))
	n20 := len(unseen) / 5
	var adaptW [][]float64
	var adaptY []int
	var testSet []*dataset.Sample
	for i, pi := range perm2 {
		s := unseen[pi]
		switch {
		case i < n20:
			adaptW = append(adaptW, s.Waveform)
			adaptY = append(adaptY, dataset.LivenessLabel(s.Cond))
		case i < 2*n20:
			// validation share (not separately reported here)
		default:
			testSet = append(testSet, s)
		}
	}
	r.progressf("adapting liveness detector on %d new samples...", len(adaptW))
	if err := det.Adapt(adaptW, dataset.SampleWaveformRate, adaptY, 10); err != nil {
		return nil, fmt.Errorf("eval: liveness adaptation: %w", err)
	}
	if err := evalOn("adapted (+20%, 10 epochs)", "unseen test split (60%)", testSet); err != nil {
		return nil, err
	}
	t.AddNote("paper: 98.52%% / EER 3.90%% on ASVspoof test; 84.87%% / EER 16.50%% cold on own data; 98.68%% / EER 2.58%% after adaptation")
	return t, nil
}
