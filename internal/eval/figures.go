package eval

import (
	"fmt"
	"math"
	"math/rand/v2"

	"headtalk/internal/audio"
	"headtalk/internal/dsp"
	"headtalk/internal/geom"
	"headtalk/internal/mic"
	"headtalk/internal/room"
	"headtalk/internal/speech"
	"headtalk/internal/srp"
)

// Fig3Spectra reproduces Fig. 3: band-energy profiles of the utterance
// "Computer" as spoken live and as replayed through the Sony
// loudspeaker and the Galaxy S21 phone. The table reports normalized
// mean magnitude per octave-ish band; the live voice shows exponential
// decay above 4 kHz while the replays are lower and flatter there.
func (r *Runner) Fig3Spectra() (*Table, error) {
	const fs = 48000
	rng := rand.New(rand.NewPCG(r.opts.Seed, 0xF13))
	dry := speech.Synthesize(speech.WordComputer, speech.DefaultVoice(), fs, rng)
	sources := []struct {
		name string
		buf  *audio.Buffer
	}{
		{"live human", dry},
		{"Sony SRS-X5 replay", speech.RenderMechanical(dry, speech.SonySRSX5, rng)},
		{"Galaxy S21 replay", speech.RenderMechanical(dry, speech.GalaxyS21, rng)},
	}
	bands := []struct {
		lo, hi float64
	}{
		{100, 500}, {500, 1000}, {1000, 2000}, {2000, 4000},
		{4000, 8000}, {8000, 16000},
	}
	t := &Table{
		ID:     "fig3",
		Title:  "Fig. 3: spectral profile of 'Computer' by source (normalized band magnitude, dB)",
		Header: []string{"Band", "Live human", "Sony SRS-X5", "Galaxy S21"},
	}
	profiles := make([][]float64, len(sources))
	for si, src := range sources {
		spec := dsp.HalfSpectrum(src.buf.Samples)
		vals := make([]float64, len(bands))
		for bi, b := range bands {
			vals[bi] = dsp.BandEnergy(spec, len(src.buf.Samples), fs, b.lo, b.hi)
		}
		// Normalize to the strongest band so the shapes compare.
		peak := dsp.Max(vals)
		for bi := range vals {
			if peak > 0 {
				vals[bi] = 20 * math.Log10(vals[bi]/peak+1e-12)
			}
		}
		profiles[si] = vals
	}
	for bi, b := range bands {
		t.AddRow(
			fmt.Sprintf("%.0f–%.0f Hz", b.lo, b.hi),
			fmt.Sprintf("%.1f dB", profiles[0][bi]),
			fmt.Sprintf("%.1f dB", profiles[1][bi]),
			fmt.Sprintf("%.1f dB", profiles[2][bi]),
		)
	}
	t.AddNote("paper Fig. 3: live speech keeps high-frequency content above 4 kHz with exponential decay; replays lose it")
	return t, nil
}

// Fig6Curves reproduces Fig. 6: the GCC between Mic1 and Mic2 of D3
// and the weighted SRP, for a speaker at 3 m facing 0°, 90° and 180°.
func (r *Runner) Fig6Curves() (*Table, error) {
	const fs = 48000
	rng := rand.New(rand.NewPCG(r.opts.Seed, 0xF6))
	labRoom := room.LabRoom()
	sim := room.NewSimulator(labRoom)
	sim.TailTaps = 32
	array := mic.DeviceD3()
	devPos := geom.Vec3{X: 0.40, Y: 2.10, Z: 0.74}
	scene := &mic.Scene{
		Sim: sim, Array: array, ArrayPos: devPos,
		Ambients: []mic.AmbientNoise{{Kind: audio.PinkNoise, SPL: 33}},
	}
	maxLag := array.MaxDelaySamples(fs, labRoom.C())

	angles := []float64{0, 90, 180}
	gccCurves := make([][]float64, len(angles))
	srpCurves := make([][]float64, len(angles))
	for ai, angle := range angles {
		dry := speech.Synthesize(speech.WordComputer, speech.DefaultVoice(), fs, rng)
		utt := mic.PrepareUtterance(dry, sim.Bands)
		pos := geom.Vec3{X: devPos.X + 3, Y: devPos.Y, Z: 1.65}
		src := room.Source{
			Pos:     pos,
			Azimuth: geom.Azimuth(devPos.Sub(pos)) + angle,
			Dir:     room.HumanDirectivity{},
		}
		rec := scene.Capture(src, utt, 70, rng)
		pairs, err := srp.AllPairs(rec.Channels, srp.PairOptions{
			MaxLag: maxLag, PHAT: true, SampleRate: fs, BandLo: 100, BandHi: 8000,
		})
		if err != nil {
			return nil, fmt.Errorf("eval: fig6 at %g°: %w", angle, err)
		}
		gccCurves[ai] = pairs[0].R // Mic1–Mic2
		srpCurves[ai] = srp.SRP(pairs)
	}

	t := &Table{
		ID:     "fig6",
		Title:  "Fig. 6: GCC(Mic1,Mic2) and weighted SRP by lag, D3 at 3 m (0°/90°/180°)",
		Header: []string{"Lag (samples)", "GCC 0°", "GCC 90°", "GCC 180°", "SRP 0°", "SRP 90°", "SRP 180°"},
	}
	for k := 0; k < 2*maxLag+1; k++ {
		t.AddRow(
			fmt.Sprintf("%+d", k-maxLag),
			fmt.Sprintf("%.3f", gccCurves[0][k]),
			fmt.Sprintf("%.3f", gccCurves[1][k]),
			fmt.Sprintf("%.3f", gccCurves[2][k]),
			fmt.Sprintf("%.3f", srpCurves[0][k]),
			fmt.Sprintf("%.3f", srpCurves[1][k]),
			fmt.Sprintf("%.3f", srpCurves[2][k]),
		)
	}
	t.AddNote("paper Fig. 6: smaller facing angles yield higher GCC/SRP peaks; larger angles peak at shifted lags")
	return t, nil
}
