package eval

import (
	"fmt"
	"strings"
	"testing"

	"headtalk/internal/dataset"
	"headtalk/internal/ml"
	"headtalk/internal/orientation"
)

func TestTableFormatting(t *testing.T) {
	tab := &Table{
		ID:     "x",
		Title:  "Demo",
		Header: []string{"A", "Long header"},
	}
	tab.AddRow("1", "2")
	tab.AddRow("333", "4")
	tab.AddNote("a note with %d", 42)
	s := tab.String()
	if !strings.Contains(s, "Demo") || !strings.Contains(s, "Long header") || !strings.Contains(s, "note: a note with 42") {
		t.Errorf("table text:\n%s", s)
	}
	md := tab.Markdown()
	if !strings.Contains(md, "| A | Long header |") || !strings.Contains(md, "| --- | --- |") {
		t.Errorf("markdown:\n%s", md)
	}
}

func TestRegistryLookup(t *testing.T) {
	exps := Experiments()
	if len(exps) < 20 {
		t.Fatalf("only %d experiments registered", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if seen[e.Name] {
			t.Errorf("duplicate experiment %q", e.Name)
		}
		seen[e.Name] = true
		if e.Run == nil || e.PaperRef == "" {
			t.Errorf("experiment %q incomplete", e.Name)
		}
	}
	if _, err := Lookup("definitions"); err != nil {
		t.Error(err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("expected error for unknown experiment")
	}
}

func TestUserStudyExperiment(t *testing.T) {
	r := NewRunner(Options{Seed: 1})
	tab, err := r.UserStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Errorf("%d survey rows, want 5", len(tab.Rows))
	}
	joined := tab.String()
	if !strings.Contains(joined, "77.38") {
		t.Error("SUS numbers missing from output")
	}
}

func TestFig3Experiment(t *testing.T) {
	r := NewRunner(Options{Seed: 1})
	tab, err := r.Fig3Spectra()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("%d bands", len(tab.Rows))
	}
	// The replayed sources must be weaker than the live voice in the
	// top band (row 5: 8-16 kHz). Values are "x.x dB" strings; the
	// live column is normalized per-source so compare within row by
	// parsing sign/magnitude crudely: live should be >= replays.
	row := tab.Rows[5]
	live := parseDB(t, row[1])
	sony := parseDB(t, row[2])
	phone := parseDB(t, row[3])
	if sony >= live || phone >= live {
		t.Errorf("replay top-band levels (%g, %g) not below live %g", sony, phone, live)
	}
}

func parseDB(t *testing.T, s string) float64 {
	t.Helper()
	var v float64
	if _, err := fmt.Sscanf(s, "%f dB", &v); err != nil {
		t.Fatalf("parsing %q: %v", s, err)
	}
	return v
}

func TestSampleCaching(t *testing.T) {
	r := NewRunner(Options{Seed: 1})
	conds := []dataset.Condition{{AngleDeg: 0}, {AngleDeg: 90}}
	a, err := r.samples("cachekey", conds, false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.samples("cachekey", conds, false)
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Error("cache miss on identical key")
	}
}

func TestLabeledFiltersBorderline(t *testing.T) {
	samples := []*dataset.Sample{
		{Cond: dataset.Condition{AngleDeg: 0}, Features: []float64{1}},
		{Cond: dataset.Condition{AngleDeg: 60}, Features: []float64{2}},
		{Cond: dataset.Condition{AngleDeg: 180}, Features: []float64{3}},
	}
	x, y := labeled(samples, orientation.Definition4)
	if len(x) != 2 {
		t.Fatalf("kept %d samples, want 2 (borderline 60° excluded)", len(x))
	}
	if y[0] != orientation.LabelFacing || y[1] != orientation.LabelNonFacing {
		t.Errorf("labels %v", y)
	}
}

func TestMeanHelpers(t *testing.T) {
	ms := []ml.BinaryMetrics{
		{TP: 1, TN: 1},        // acc 1
		{TP: 1, TN: 0, FP: 1}, // acc 0.5
	}
	if got := meanAccuracy(ms); got != 0.75 {
		t.Errorf("meanAccuracy %g", got)
	}
	if meanAccuracy(nil) != 0 || meanF1(nil) != 0 {
		t.Error("empty means should be 0")
	}
}

func TestDovFacingLabels(t *testing.T) {
	for _, a := range []float64{0, 45, -45} {
		if dovFacing(a) != orientation.LabelFacing {
			t.Errorf("%g should be facing in the DoV grid", a)
		}
	}
	for _, a := range []float64{90, -135, 180} {
		if dovFacing(a) != orientation.LabelNonFacing {
			t.Errorf("%g should be non-facing in the DoV grid", a)
		}
	}
}
