package eval

import (
	"fmt"

	"headtalk/internal/dataset"
	"headtalk/internal/ml"
	"headtalk/internal/orientation"
)

// micSubsets are the paper's Table IV channel combinations for D2
// (paper microphone numbering is 1-based; indices here are 0-based).
var micSubsets = []struct {
	label  string
	subset []int
}{
	{"[1 2]", []int{0, 1}},
	{"[1 2 5]", []int{0, 1, 4}},
	{"[1 2 4 5]", []int{0, 1, 3, 4}},
	{"[1 2 3 4 5]", []int{0, 1, 2, 3, 4}},
	{"[1 2 3 4 5 6]", []int{0, 1, 2, 3, 4, 5}},
}

// Table4MicCount reproduces Table IV: performance by number of D2
// microphones used, selecting subsets that maximize inter-mic
// distance. Each condition is captured once with all six microphones
// and features are extracted per subset.
func (r *Runner) Table4MicCount() (*Table, error) {
	conds := r.tableIIIConds()
	// Restrict to the 14-angle grid (Table IV uses the standard
	// collection) to keep runtime proportionate.
	var kept []dataset.Condition
	for _, c := range conds {
		a := c.AngleDeg
		if a == 75 || a == -75 {
			continue
		}
		kept = append(kept, c)
	}

	subsets := make([][]int, len(micSubsets))
	for i, s := range micSubsets {
		subsets[i] = s.subset
	}
	r.progressf("generating micCount: %d captures x %d subsets...", len(kept), len(subsets))

	type row struct {
		sess  int
		angle float64
		feats [][]float64
	}
	rows := make([]row, 0, len(kept))
	for i, c := range kept {
		feats, err := r.gen.GenerateSubsets(c, subsets)
		if err != nil {
			return nil, fmt.Errorf("eval: mic-count capture %d: %w", i, err)
		}
		rows = append(rows, row{sess: c.Session, angle: c.AngleDeg, feats: feats})
		if (i+1)%100 == 0 {
			r.progressf("  micCount: %d/%d", i+1, len(kept))
		}
	}

	t := &Table{
		ID:     "table4",
		Title:  "Table IV: performance by number of microphones (D2, lab)",
		Header: []string{"Mics", "Channels", "Accuracy", "Precision", "Recall", "F1"},
	}
	for si, spec := range micSubsets {
		// Cross-session evaluation for this subset's features.
		var all []ml.BinaryMetrics
		for _, trainSess := range []int{1, 2} {
			var trainX, testX [][]float64
			var trainY, testY []int
			for _, rw := range rows {
				l, ok := orientation.Definition4.Label(rw.angle)
				if !ok {
					continue
				}
				if rw.sess == trainSess {
					trainX = append(trainX, rw.feats[si])
					trainY = append(trainY, l)
				} else {
					testX = append(testX, rw.feats[si])
					testY = append(testY, l)
				}
			}
			model, err := orientation.Train(trainX, trainY, orientation.ModelConfig{Seed: r.opts.Seed})
			if err != nil {
				return nil, fmt.Errorf("eval: mic subset %s: %w", spec.label, err)
			}
			m, err := model.Evaluate(testX, testY)
			if err != nil {
				return nil, err
			}
			all = append(all, m)
		}
		var acc, prec, rec, f1 float64
		for _, m := range all {
			acc += m.Accuracy()
			prec += m.Precision()
			rec += m.Recall()
			f1 += m.F1()
		}
		n := float64(len(all))
		t.AddRow(fmt.Sprintf("%d", len(spec.subset)), spec.label,
			pct(acc/n), pct(prec/n), pct(rec/n), pct(f1/n))
	}
	t.AddNote("paper: performance rises to 98.61%% at 5 mics, then dips slightly at 6")
	return t, nil
}
