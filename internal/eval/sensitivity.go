package eval

import (
	"fmt"
	"strings"

	"headtalk/internal/dataset"
	"headtalk/internal/ml"
	"headtalk/internal/orientation"
)

// ds1 returns the (cached) Dataset-1 corpus.
func (r *Runner) ds1() ([]*dataset.Sample, error) {
	return r.samples("ds1", dataset.Dataset1(r.opts.Scale), false)
}

// cellOf groups Dataset-1 samples by (room, device, word).
func cellOf(s *dataset.Sample) string {
	return s.Cond.Room + "|" + s.Cond.Device + "|" + s.Cond.Word
}

// perCellCrossSession trains per (room, device, word) cell and session
// and returns one metric per (cell, test-session) pair, along with the
// trained models keyed by "cell|trainSession" for reuse.
func (r *Runner) perCellCrossSession(samples []*dataset.Sample) (map[string][]ml.BinaryMetrics, error) {
	cells := make(map[string][]*dataset.Sample)
	for _, s := range samples {
		cells[cellOf(s)] = append(cells[cellOf(s)], s)
	}
	out := make(map[string][]ml.BinaryMetrics)
	for cell, cellSamples := range cells {
		ms, err := r.crossSession(cellSamples, orientation.Definition4)
		if err != nil {
			return nil, fmt.Errorf("eval: cell %s: %w", cell, err)
		}
		out[cell] = ms
	}
	return out, nil
}

// Distance reproduces §IV-B2: accuracy by speaker-device distance,
// aggregated over sessions, devices, rooms and wake words (36 values
// in the paper).
func (r *Runner) Distance() (*Table, error) {
	samples, err := r.ds1()
	if err != nil {
		return nil, err
	}
	cells := make(map[string][]*dataset.Sample)
	for _, s := range samples {
		cells[cellOf(s)] = append(cells[cellOf(s)], s)
	}
	accByDist := map[float64][]float64{}
	for cell, cellSamples := range cells {
		groups := bySession(cellSamples)
		sessions := sortedKeys(groups)
		for _, trainSess := range sessions {
			model, err := r.trainOn(groups[trainSess], orientation.Definition4)
			if err != nil {
				return nil, fmt.Errorf("eval: cell %s: %w", cell, err)
			}
			for _, testSess := range sessions {
				if testSess == trainSess {
					continue
				}
				for _, dist := range dataset.Distances {
					sub := filter(groups[testSess], func(s *dataset.Sample) bool { return s.Cond.Distance == dist })
					x, y := labeled(sub, orientation.Definition4)
					if len(x) == 0 {
						continue
					}
					m, err := model.Evaluate(x, y)
					if err != nil {
						return nil, err
					}
					accByDist[dist] = append(accByDist[dist], m.Accuracy())
				}
			}
		}
	}
	t := &Table{
		ID:     "distance",
		Title:  "§IV-B2: accuracy by distance (mean ± std over session/device/room/word cells)",
		Header: []string{"Distance", "Accuracy", "Std", "Cells"},
	}
	for _, dist := range dataset.Distances {
		mean, std := ml.MeanStd(accByDist[dist])
		t.AddRow(fmt.Sprintf("%.0f m", dist), pct(mean), pct(std), fmt.Sprintf("%d", len(accByDist[dist])))
	}
	t.AddNote("paper: 98.38±2.41%% (1 m), 97.50±4.90%% (3 m), 92.55±7.19%% (5 m)")
	return t, nil
}

// aggregateF1 computes the F1 distribution over cells matching a
// predicate on the cell key.
func aggregateF1(perCell map[string][]ml.BinaryMetrics, match func(cell string) bool) []float64 {
	var out []float64
	for cell, ms := range perCell {
		if !match(cell) {
			continue
		}
		for _, m := range ms {
			out = append(out, m.F1())
		}
	}
	return out
}

// boxRow formats a box-plot style summary row.
func boxRow(t *Table, label string, values []float64) {
	if len(values) == 0 {
		t.AddRow(label, "-", "-", "-", "-", "0")
		return
	}
	mean, std := ml.MeanStd(values)
	min, max := values[0], values[0]
	for _, v := range values {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	t.AddRow(label, pct(mean), pct(std), pct(min), pct(max), fmt.Sprintf("%d", len(values)))
}

// Fig12WakeWords reproduces Fig. 12: the F1 distribution per wake word
// across sessions, devices and rooms.
func (r *Runner) Fig12WakeWords() (*Table, error) {
	samples, err := r.ds1()
	if err != nil {
		return nil, err
	}
	perCell, err := r.perCellCrossSession(samples)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig12",
		Title:  "Fig. 12: F1 by wake word (sessions × devices × rooms)",
		Header: []string{"Wake word", "F1 mean", "Std", "Min", "Max", "N"},
	}
	for _, word := range dataset.Words {
		vals := aggregateF1(perCell, func(cell string) bool { return strings.HasSuffix(cell, "|"+word) })
		boxRow(t, word, vals)
	}
	t.AddNote("paper: 95.92%% / 96.40%% / 96.39%% for Hey Assistant / Computer / Amazon — no significant differences")
	return t, nil
}

// Fig13Devices reproduces Fig. 13: F1 per device.
func (r *Runner) Fig13Devices() (*Table, error) {
	samples, err := r.ds1()
	if err != nil {
		return nil, err
	}
	perCell, err := r.perCellCrossSession(samples)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig13",
		Title:  "Fig. 13: F1 by device (sessions × words × rooms)",
		Header: []string{"Device", "F1 mean", "Std", "Min", "Max", "N"},
	}
	for _, dev := range dataset.DeviceIDs {
		needle := "|" + dev + "|"
		vals := aggregateF1(perCell, func(cell string) bool { return strings.Contains(cell, needle) })
		boxRow(t, dev, vals)
	}
	t.AddNote("paper: 97.47%% / 96.26%% / 94.99%% for D1 / D2 / D3 — wider arrays hear lower frequencies better")
	return t, nil
}

// Fig14Environments reproduces Fig. 14: F1 per room.
func (r *Runner) Fig14Environments() (*Table, error) {
	samples, err := r.ds1()
	if err != nil {
		return nil, err
	}
	perCell, err := r.perCellCrossSession(samples)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig14",
		Title:  "Fig. 14: F1 by environment (sessions × words × devices)",
		Header: []string{"Room", "F1 mean", "Std", "Min", "Max", "N"},
	}
	for _, roomName := range dataset.RoomNames {
		prefix := roomName + "|"
		vals := aggregateF1(perCell, func(cell string) bool { return strings.HasPrefix(cell, prefix) })
		boxRow(t, roomName, vals)
	}
	t.AddNote("paper: 98.08%% (lab) vs 94.39%% (home) — home is noisier (43 vs 33 dB) with more complex reverberation")
	return t, nil
}

// CrossEnvironment reproduces §IV-B8: train in one room, test in the
// other, plus the mixed-rooms cross-session recovery.
func (r *Runner) CrossEnvironment() (*Table, error) {
	samples, err := r.ds1()
	if err != nil {
		return nil, err
	}
	d2 := filter(samples, func(s *dataset.Sample) bool { return s.Cond.Device == "D2" })

	t := &Table{
		ID:     "crossenv",
		Title:  "§IV-B8: cross-environment performance (D2)",
		Header: []string{"Protocol", "Accuracy", "F1"},
	}

	// Pure cross-room: train on all of one room ("Computer"), test the
	// other.
	var accs, f1s []float64
	for _, trainRoom := range dataset.RoomNames {
		trainSet := filter(d2, func(s *dataset.Sample) bool {
			return s.Cond.Room == trainRoom && s.Cond.Word == "Computer"
		})
		testSet := filter(d2, func(s *dataset.Sample) bool {
			return s.Cond.Room != trainRoom && s.Cond.Word == "Computer"
		})
		model, err := r.trainOn(trainSet, orientation.Definition4)
		if err != nil {
			return nil, err
		}
		x, y := labeled(testSet, orientation.Definition4)
		m, err := model.Evaluate(x, y)
		if err != nil {
			return nil, err
		}
		accs = append(accs, m.Accuracy())
		f1s = append(f1s, m.F1())
	}
	accMean, _ := ml.MeanStd(accs)
	f1Mean, _ := ml.MeanStd(f1s)
	t.AddRow("train one room -> test other", pct(accMean), pct(f1Mean))

	// Mixed-room training: train on session 1 of both rooms, test
	// session 2 (and vice versa), per word.
	for _, word := range dataset.Words {
		wordSet := filter(d2, func(s *dataset.Sample) bool { return s.Cond.Word == word })
		ms, err := r.crossSession(wordSet, orientation.Definition4)
		if err != nil {
			return nil, err
		}
		t.AddRow("mixed rooms, cross-session ("+word+")", pct(meanAccuracy(ms)), pct(meanF1(ms)))
	}
	t.AddNote("paper: 77.73%% pure cross-room; 96.90/95.62/95.02%% after mixed-room training")
	return t, nil
}

// Placement reproduces §IV-B7: train at location A, test at coffee
// table B (45 cm) and work table C (75 cm).
func (r *Runner) Placement() (*Table, error) {
	trainSamples, err := r.samples("tableIII", r.tableIIIConds(), false)
	if err != nil {
		return nil, err
	}
	model, err := r.trainOn(trainSamples, orientation.Definition4)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:     "placement",
		Title:  "§IV-B7: device placement (trained at location A)",
		Header: []string{"Placement", "Height", "Accuracy"},
	}
	reps := r.singleCellReps()
	for _, placement := range []struct {
		label  string
		id     string
		height string
	}{{"B (coffee table)", "B", "45 cm"}, {"C (work table)", "C", "75 cm"}} {
		var conds []dataset.Condition
		for sess := 1; sess <= 2; sess++ {
			for _, a := range dataset.Angles14 {
				for rep := 1; rep <= reps; rep++ {
					conds = append(conds, dataset.Condition{
						Session: sess, Distance: 3, AngleDeg: a, Rep: rep, Placement: placement.id,
					})
				}
			}
		}
		samples, err := r.samples("placement-"+placement.id, conds, false)
		if err != nil {
			return nil, err
		}
		x, y := labeled(samples, orientation.Definition4)
		m, err := model.Evaluate(x, y)
		if err != nil {
			return nil, err
		}
		t.AddRow(placement.label, placement.height, pct(m.Accuracy()))
	}
	t.AddNote("paper: 97.50%% at B, 91.25%% at C (vs 96.95%% trained and tested at A)")
	return t, nil
}

// Fig15Temporal reproduces §IV-B9 / Fig. 15: accuracy on week- and
// month-old data, then the incremental-learning recovery curve.
func (r *Runner) Fig15Temporal() (*Table, error) {
	trainSamples, err := r.samples("tableIII", r.tableIIIConds(), false)
	if err != nil {
		return nil, err
	}
	temporal, err := r.samples("ds3", dataset.Dataset3(r.opts.Scale), false)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:     "fig15",
		Title:  "§IV-B9 / Fig. 15: temporal stability and incremental learning",
		Header: []string{"Test set", "Added samples", "Accuracy"},
	}
	for _, temporalKind := range []dataset.Temporal{dataset.TemporalWeek, dataset.TemporalMonth} {
		aged := filter(temporal, func(s *dataset.Sample) bool { return s.Cond.Temporal == temporalKind })
		agedX, agedY := labeled(aged, orientation.Definition4)
		for _, added := range []int{0, 10, 20, 30, 40} {
			// Fresh model per operating point so updates don't
			// accumulate across rows.
			model, err := r.trainOn(trainSamples, orientation.Definition4)
			if err != nil {
				return nil, err
			}
			if added > 0 {
				pool := agedX
				if added < len(pool) {
					pool = pool[:added]
				}
				if _, err := model.IncrementalUpdate(pool, 0.8); err != nil {
					return nil, err
				}
			}
			evalX, evalY := agedX, agedY
			if added > 0 && added < len(agedX) {
				evalX, evalY = agedX[added:], agedY[added:]
			}
			m, err := model.Evaluate(evalX, evalY)
			if err != nil {
				return nil, err
			}
			t.AddRow(string(temporalKind), fmt.Sprintf("%d", added), pct(m.Accuracy()))
		}
	}
	t.AddNote("paper: 81.25%% (week) and 83.19%% (month) cold; ~92/90%% after 10 added samples, ~95%% after 40")
	return t, nil
}

// AmbientNoise reproduces §IV-B10: accuracy under added white noise
// and TV babble at 45 dB SPL.
func (r *Runner) AmbientNoise() (*Table, error) {
	trainSamples, err := r.samples("tableIII", r.tableIIIConds(), false)
	if err != nil {
		return nil, err
	}
	model, err := r.trainOn(trainSamples, orientation.Definition4)
	if err != nil {
		return nil, err
	}
	noisy, err := r.samples("ds4", dataset.Dataset4(r.opts.Scale), false)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "ambient",
		Title:  "§IV-B10: impact of ambient noise (added at 45 dB SPL)",
		Header: []string{"Noise", "Accuracy"},
	}
	for _, kind := range []string{"white", "tv"} {
		sub := filter(noisy, func(s *dataset.Sample) bool { return s.Cond.Ambient.String() == kind })
		x, y := labeled(sub, orientation.Definition4)
		m, err := model.Evaluate(x, y)
		if err != nil {
			return nil, err
		}
		t.AddRow(kind, pct(m.Accuracy()))
	}
	t.AddNote("paper: 89%% with white noise, 83.33%% with a TV playing (vs 98.08%% quiet lab)")
	return t, nil
}

// Sitting reproduces §IV-B11: a standing-trained model tested on a
// seated speaker.
func (r *Runner) Sitting() (*Table, error) {
	trainSamples, err := r.samples("tableIII", r.tableIIIConds(), false)
	if err != nil {
		return nil, err
	}
	model, err := r.trainOn(trainSamples, orientation.Definition4)
	if err != nil {
		return nil, err
	}
	sitting, err := r.samples("ds5", dataset.Dataset5(r.opts.Scale), false)
	if err != nil {
		return nil, err
	}
	x, y := labeled(sitting, orientation.Definition4)
	m, err := model.Evaluate(x, y)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "sitting",
		Title:  "§IV-B11: sitting vs standing",
		Header: []string{"Posture", "Accuracy"},
	}
	t.AddRow("trained standing, tested sitting", pct(m.Accuracy()))
	t.AddNote("paper: 93.33%% — sitting does not significantly impact detection")
	return t, nil
}

// Loudness reproduces §IV-B12: a 70 dB-trained model tested at 60 and
// 80 dB.
func (r *Runner) Loudness() (*Table, error) {
	trainSamples, err := r.samples("tableIII", r.tableIIIConds(), false)
	if err != nil {
		return nil, err
	}
	model, err := r.trainOn(trainSamples, orientation.Definition4)
	if err != nil {
		return nil, err
	}
	loud, err := r.samples("ds6", dataset.Dataset6(r.opts.Scale), false)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "loudness",
		Title:  "§IV-B12: impact of speech loudness (trained at 70 dB)",
		Header: []string{"Loudness", "Accuracy"},
	}
	for _, spl := range []float64{60, 80} {
		sub := filter(loud, func(s *dataset.Sample) bool { return s.Cond.SPL == spl })
		x, y := labeled(sub, orientation.Definition4)
		m, err := model.Evaluate(x, y)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%.0f dB", spl), pct(m.Accuracy()))
	}
	t.AddNote("paper: 93.33%% at 60 dB, 95.83%% at 80 dB — louder speech sharpens the orientation signature")
	return t, nil
}

// SurroundingObjects reproduces §IV-B13: partial block, full block and
// the raised-device recovery.
func (r *Runner) SurroundingObjects() (*Table, error) {
	trainSamples, err := r.samples("tableIII", r.tableIIIConds(), false)
	if err != nil {
		return nil, err
	}
	model, err := r.trainOn(trainSamples, orientation.Definition4)
	if err != nil {
		return nil, err
	}
	objects, err := r.samples("ds7", dataset.Dataset7(r.opts.Scale), false)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "objects",
		Title:  "§IV-B13: impact of surrounding objects",
		Header: []string{"Setting", "Accuracy"},
	}
	settings := []struct {
		label string
		pred  func(*dataset.Sample) bool
	}{
		{"partially blocked", func(s *dataset.Sample) bool { return s.Cond.Obstacle == "partial" }},
		{"fully blocked", func(s *dataset.Sample) bool { return s.Cond.Obstacle == "full" && !s.Cond.Raised }},
		{"raised +14.8 cm", func(s *dataset.Sample) bool { return s.Cond.Raised }},
	}
	for _, set := range settings {
		sub := filter(objects, set.pred)
		x, y := labeled(sub, orientation.Definition4)
		m, err := model.Evaluate(x, y)
		if err != nil {
			return nil, err
		}
		t.AddRow(set.label, pct(m.Accuracy()))
	}
	t.AddNote("paper: 95.83%% partial, 70%% fully blocked, 95%% after raising the device")
	return t, nil
}
