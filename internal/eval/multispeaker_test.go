package eval

import (
	"strings"
	"testing"

	"headtalk/internal/dataset"
)

// TestMultiSpeakerExperiments runs the three multi-speaker extension
// experiments end to end at the tiny corpus scale against one shared
// runner (the Table III training corpus is generated once and cached).
// The fusion experiment's acceptance criterion — the fused room
// decision beats the best single array — is asserted directly.
func TestMultiSpeakerExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("generates a training corpus")
	}
	r := NewRunner(Options{Seed: 42, Scale: dataset.ScaleTiny})

	singleA, singleC, fused, total, err := r.fusionCounts()
	if err != nil {
		t.Fatal(err)
	}
	if total == 0 {
		t.Fatal("fusion scenario produced no trials")
	}
	best := singleA
	if singleC > best {
		best = singleC
	}
	if fused <= best {
		t.Errorf("fused decision %d/%d does not beat best single array (A %d, C %d)",
			fused, total, singleA, singleC)
	}
	if 2*fused < total {
		t.Errorf("fused decision %d/%d below chance", fused, total)
	}

	tab, err := r.ArrayFusion()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("fusion table rows %d, want 3 (A, C, fused)", len(tab.Rows))
	}
	if !strings.Contains(tab.String(), "criterion") {
		t.Error("fusion table must state its accuracy criterion")
	}

	tab, err = r.OverlappingTalkers()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("overlap table rows %d, want 3 interference levels", len(tab.Rows))
	}
	if !strings.Contains(tab.String(), "criterion") {
		t.Error("overlap table must state its accuracy criterion")
	}

	tab, err = r.TrajectoryWaypoints()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("trajectory table rows %d, want 3 scenarios", len(tab.Rows))
	}
	if !strings.Contains(tab.String(), "criterion") {
		t.Error("trajectory table must state its accuracy criterion")
	}
}
