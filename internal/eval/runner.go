// Package eval reproduces every table and figure of the paper's
// evaluation section (§IV, §V) on the synthetic corpus. Each
// experiment is a method on Runner returning a formatted Table;
// cmd/experiments drives the full suite and bench_test.go exposes one
// benchmark per table/figure.
package eval

import (
	"fmt"
	"io"
	"sort"

	"headtalk/internal/dataset"
	"headtalk/internal/ml"
	"headtalk/internal/orientation"
)

// Options configures a Runner.
type Options struct {
	// Seed namespaces all corpus generation and training randomness.
	Seed uint64
	// Scale selects reduced or paper-sized corpora.
	Scale dataset.Scale
	// Progress, when non-nil, receives generation progress lines.
	Progress io.Writer
}

// Runner generates corpora on demand (cached per experiment key) and
// runs the paper's experiments.
type Runner struct {
	opts   Options
	gen    *dataset.Generator
	genWav *dataset.Generator
	cache  map[string][]*dataset.Sample
}

// NewRunner returns a runner with the given options.
func NewRunner(opts Options) *Runner {
	if opts.Seed == 0 {
		opts.Seed = 42
	}
	gen := dataset.NewGenerator(opts.Seed)
	genWav := dataset.NewGenerator(opts.Seed)
	genWav.KeepWaveforms = true
	return &Runner{
		opts:   opts,
		gen:    gen,
		genWav: genWav,
		cache:  make(map[string][]*dataset.Sample),
	}
}

// Scale returns the runner's corpus scale.
func (r *Runner) Scale() dataset.Scale { return r.opts.Scale }

// progressf prints progress when enabled.
func (r *Runner) progressf(format string, args ...any) {
	if r.opts.Progress != nil {
		fmt.Fprintf(r.opts.Progress, format+"\n", args...)
	}
}

// samples generates (or returns cached) samples for a keyed condition
// list. wav selects the waveform-keeping generator.
func (r *Runner) samples(key string, conds []dataset.Condition, wav bool) ([]*dataset.Sample, error) {
	cacheKey := key
	if wav {
		cacheKey += "|wav"
	}
	if s, ok := r.cache[cacheKey]; ok {
		return s, nil
	}
	gen := r.gen
	if wav {
		gen = r.genWav
	}
	r.progressf("generating %s: %d samples...", key, len(conds))
	out := make([]*dataset.Sample, 0, len(conds))
	for i, c := range conds {
		s, err := gen.Generate(c)
		if err != nil {
			return nil, fmt.Errorf("eval: generating %s sample %d: %w", key, i, err)
		}
		out = append(out, s)
		if (i+1)%200 == 0 {
			r.progressf("  %s: %d/%d", key, i+1, len(conds))
		}
	}
	r.cache[cacheKey] = out
	return out, nil
}

// singleCellReps returns the repetition count for single-cell
// experiments, where the reduced scale can afford extra repetitions to
// stabilize accuracy estimates.
func (r *Runner) singleCellReps() int {
	switch r.opts.Scale {
	case dataset.ScalePaper:
		return 2
	case dataset.ScaleTiny:
		return 2
	default:
		return 3
	}
}

// --- shared condition builders ---

// tableIIIConds is the Table III collection: lab, D2, "Computer", the
// 16-angle grid including ±75°.
func (r *Runner) tableIIIConds() []dataset.Condition {
	radials, distances, _ := gridFor(r.opts.Scale)
	reps := r.singleCellReps()
	var out []dataset.Condition
	for sess := 1; sess <= dataset.Sessions; sess++ {
		for _, rad := range radials {
			for _, dist := range distances {
				for _, a := range dataset.AnglesWithBorderline {
					for rep := 1; rep <= reps; rep++ {
						out = append(out, dataset.Condition{
							Session: sess, RadialDeg: rad, Distance: dist,
							AngleDeg: a, Rep: rep,
						})
					}
				}
			}
		}
	}
	return out
}

// gridFor mirrors dataset.Scale.grid for eval-local specs.
func gridFor(s dataset.Scale) (radials, distances []float64, reps int) {
	switch s {
	case dataset.ScalePaper:
		return dataset.Radials, dataset.Distances, 2
	case dataset.ScaleTiny:
		return []float64{0}, []float64{3}, 1
	default:
		return []float64{0}, dataset.Distances, 1
	}
}

// --- shared training helpers ---

// labeled filters samples to a definition's training arcs, returning
// features and labels.
func labeled(samples []*dataset.Sample, def orientation.Definition) (x [][]float64, y []int) {
	for _, s := range samples {
		if l, ok := def.Label(s.Cond.AngleDeg); ok {
			x = append(x, s.Features)
			y = append(y, l)
		}
	}
	return x, y
}

// bySession splits samples into per-session groups.
func bySession(samples []*dataset.Sample) map[int][]*dataset.Sample {
	out := make(map[int][]*dataset.Sample)
	for _, s := range samples {
		out[s.Cond.Session] = append(out[s.Cond.Session], s)
	}
	return out
}

// filter returns the samples matching pred.
func filter(samples []*dataset.Sample, pred func(*dataset.Sample) bool) []*dataset.Sample {
	var out []*dataset.Sample
	for _, s := range samples {
		if pred(s) {
			out = append(out, s)
		}
	}
	return out
}

// trainOn trains a Definition-labeled SVM model on samples.
func (r *Runner) trainOn(samples []*dataset.Sample, def orientation.Definition) (*orientation.Model, error) {
	x, y := labeled(samples, def)
	if len(x) == 0 {
		return nil, fmt.Errorf("eval: no samples inside training arcs of %s", def.Name)
	}
	return orientation.Train(x, y, orientation.ModelConfig{Seed: r.opts.Seed})
}

// crossSession trains on each session and tests on the other with the
// given definition, returning the per-direction metrics.
func (r *Runner) crossSession(samples []*dataset.Sample, def orientation.Definition) ([]ml.BinaryMetrics, error) {
	groups := bySession(samples)
	sessions := make([]int, 0, len(groups))
	for s := range groups {
		sessions = append(sessions, s)
	}
	sort.Ints(sessions)
	if len(sessions) < 2 {
		return nil, fmt.Errorf("eval: cross-session evaluation needs >= 2 sessions, have %d", len(sessions))
	}
	var out []ml.BinaryMetrics
	for _, trainSess := range sessions {
		model, err := r.trainOn(groups[trainSess], def)
		if err != nil {
			return nil, err
		}
		var testX [][]float64
		var testY []int
		for _, testSess := range sessions {
			if testSess == trainSess {
				continue
			}
			x, y := labeled(groups[testSess], def)
			testX = append(testX, x...)
			testY = append(testY, y...)
		}
		m, err := model.Evaluate(testX, testY)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// meanAccuracy averages Accuracy over metric sets.
func meanAccuracy(ms []ml.BinaryMetrics) float64 {
	if len(ms) == 0 {
		return 0
	}
	var acc float64
	for _, m := range ms {
		acc += m.Accuracy()
	}
	return acc / float64(len(ms))
}

// meanF1 averages F1 over metric sets.
func meanF1(ms []ml.BinaryMetrics) float64 {
	if len(ms) == 0 {
		return 0
	}
	var f float64
	for _, m := range ms {
		f += m.F1()
	}
	return f / float64(len(ms))
}

// pct formats a fraction as a percentage.
func pct(v float64) string { return fmt.Sprintf("%.2f%%", 100*v) }
