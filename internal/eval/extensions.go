package eval

// Extension experiments beyond the paper's evaluation: the
// moving-speaker case its §VI limitations section leaves open, and the
// multi-assistant device-selection scenario its introduction motivates
// ("multiple VAs will likely share the same physical space, which can
// lead to misactivating the wrong VAs").

import (
	"fmt"
	"math/rand/v2"

	"headtalk/internal/audio"
	"headtalk/internal/dataset"
	"headtalk/internal/dsp"
	"headtalk/internal/features"
	"headtalk/internal/geom"
	"headtalk/internal/mic"
	"headtalk/internal/orientation"
	"headtalk/internal/room"
	"headtalk/internal/speech"
)

// labScene assembles the standard lab capture setup around placement
// pos.
func labScene(pos geom.Vec3, tailTaps int) *mic.Scene {
	sim := room.NewSimulator(room.LabRoom())
	sim.TailTaps = tailTaps
	return &mic.Scene{
		Sim:      sim,
		Array:    mic.DeviceD2(),
		ArrayPos: pos,
		Ambients: []mic.AmbientNoise{{Kind: audio.PinkNoise, SPL: 33}},
	}
}

// extractD2 preprocesses and extracts features from a D2 capture using
// the standard 4-mic subset.
func extractD2(rec *audio.Recording) ([]float64, error) {
	bp, err := dsp.NewButterworthBandPass(5, 100, 16000, rec.SampleRate)
	if err != nil {
		return nil, err
	}
	sel, err := rec.Select(mic.DeviceD2().DefaultSubset())
	if err != nil {
		return nil, err
	}
	pre := &audio.Recording{SampleRate: rec.SampleRate}
	for _, ch := range sel.Channels {
		pre.Channels = append(pre.Channels, bp.Apply(ch))
	}
	return features.Extract(pre, features.DefaultConfig(13, 48000))
}

// MovingSpeaker evaluates the model on speakers who move while
// speaking: walking toward the device while facing it, walking across
// the room while facing it, walking across while facing the walking
// direction, and turning the head away mid-utterance. The paper never
// measures this (§VI); the extension quantifies how far the
// static-trained model carries.
func (r *Runner) MovingSpeaker() (*Table, error) {
	trainSamples, err := r.samples("tableIII", r.tableIIIConds(), false)
	if err != nil {
		return nil, err
	}
	model, err := r.trainOn(trainSamples, orientation.Definition4)
	if err != nil {
		return nil, err
	}

	devPos := geom.Vec3{X: 0.40, Y: 2.10, Z: 0.74}
	scene := labScene(devPos, 32)
	rng := rand.New(rand.NewPCG(r.opts.Seed, 0x30F1))

	type scenario struct {
		label      string
		start, end geom.Vec3
		// Facing: "device" keeps the head toward the device along the
		// whole path; "path" faces the walking direction; "turn" spins
		// from facing to 180° away.
		facing     string
		wantFacing bool
	}
	mouth := func(x, y float64) geom.Vec3 { return geom.Vec3{X: x, Y: y, Z: 1.65} }
	scenarios := []scenario{
		{"approach, facing device", mouth(4.4, 2.1), mouth(2.4, 2.1), "device", true},
		{"walk across, facing device", mouth(3.4, 1.1), mouth(3.4, 3.1), "device", true},
		{"walk across, facing path", mouth(3.4, 1.1), mouth(3.4, 3.1), "path", false},
		{"turn away mid-utterance", mouth(3.4, 2.1), mouth(3.4, 2.1), "turn", false},
	}

	trials := 10
	if r.opts.Scale == dataset.ScaleTiny {
		trials = 3
	}
	t := &Table{
		ID:     "moving",
		Title:  "Extension: moving speakers (static-trained Definition-4 model)",
		Header: []string{"Scenario", "Expected", "Classified facing", "Agreement"},
	}
	for _, sc := range scenarios {
		correct := 0
		facingVotes := 0
		for trial := 0; trial < trials; trial++ {
			buf := speech.Synthesize(speech.WordComputer, speech.DefaultVoice(), 48000, rng)
			utt := mic.PrepareUtterance(buf, scene.Sim.Bands)
			startAz := geom.Azimuth(devPos.Sub(sc.start))
			endAz := geom.Azimuth(devPos.Sub(sc.end))
			switch sc.facing {
			case "path":
				walkAz := geom.Azimuth(sc.end.Sub(sc.start))
				startAz, endAz = walkAz, walkAz
			case "turn":
				endAz = startAz + 180
			}
			start := room.Source{Pos: sc.start, Azimuth: startAz, Dir: room.HumanDirectivity{}}
			end := room.Source{Pos: sc.end, Azimuth: endAz, Dir: room.HumanDirectivity{}}
			rec := scene.CaptureMoving(start, end, utt, 70, 5, rng)
			feats, err := extractD2(rec)
			if err != nil {
				return nil, fmt.Errorf("eval: moving scenario %q: %w", sc.label, err)
			}
			pred := model.Predict(feats)
			if pred == orientation.LabelFacing {
				facingVotes++
			}
			want := orientation.LabelNonFacing
			if sc.wantFacing {
				want = orientation.LabelFacing
			}
			if pred == want {
				correct++
			}
		}
		expected := "non-facing"
		if sc.wantFacing {
			expected = "facing"
		}
		t.AddRow(sc.label, expected,
			fmt.Sprintf("%d/%d", facingVotes, trials),
			pct(float64(correct)/float64(trials)))
	}
	t.AddNote("extension beyond the paper: §VI lists moving speakers as uncovered")
	return t, nil
}

// DeviceSelection evaluates the multi-VA scenario: two assistants in
// the same lab (placements A and C), a speaker stands between them and
// addresses one by facing it. Correct selection means the addressed
// device accepts while the other rejects.
func (r *Runner) DeviceSelection() (*Table, error) {
	trainSamples, err := r.samples("tableIII", r.tableIIIConds(), false)
	if err != nil {
		return nil, err
	}
	model, err := r.trainOn(trainSamples, orientation.Definition4)
	if err != nil {
		return nil, err
	}

	posA := geom.Vec3{X: 0.40, Y: 2.10, Z: 0.74}
	posC := geom.Vec3{X: 3.00, Y: 3.60, Z: 0.75}
	sceneA := labScene(posA, 32)
	sceneC := labScene(posC, 32)
	rng := rand.New(rand.NewPCG(r.opts.Seed, 0xDE5E))

	// Speaker spots chosen so both devices are 1.5–3.5 m away with a
	// wide angular separation between them.
	spots := []geom.Vec3{
		{X: 2.2, Y: 1.6, Z: 1.65},
		{X: 1.8, Y: 2.8, Z: 1.65},
		{X: 2.8, Y: 2.0, Z: 1.65},
	}
	trials := 4
	if r.opts.Scale == dataset.ScaleTiny {
		trials = 2
	}

	t := &Table{
		ID:     "deviceselect",
		Title:  "Extension: multi-VA device selection (two D2 assistants, lab)",
		Header: []string{"Addressed", "Addressed accepts", "Other rejects", "Both correct"},
	}
	for _, target := range []string{"A", "C"} {
		accepts, rejects, both, total := 0, 0, 0, 0
		for _, spot := range spots {
			for trial := 0; trial < trials; trial++ {
				targetPos := posA
				if target == "C" {
					targetPos = posC
				}
				az := geom.Azimuth(targetPos.Sub(spot))
				src := room.Source{Pos: spot, Azimuth: az, Dir: room.HumanDirectivity{}}
				buf := speech.Synthesize(speech.WordComputer, speech.DefaultVoice(), 48000, rng)
				utt := mic.PrepareUtterance(buf, sceneA.Sim.Bands)
				recA := sceneA.Capture(src, utt, 70, rng)
				recC := sceneC.Capture(src, utt, 70, rng)
				featsA, err := extractD2(recA)
				if err != nil {
					return nil, err
				}
				featsC, err := extractD2(recC)
				if err != nil {
					return nil, err
				}
				predA := model.Predict(featsA) == orientation.LabelFacing
				predC := model.Predict(featsC) == orientation.LabelFacing
				wantA := target == "A"
				total++
				if (wantA && predA) || (!wantA && predC) {
					accepts++
				}
				if (wantA && !predC) || (!wantA && !predA) {
					rejects++
				}
				if ((wantA && predA) || (!wantA && predC)) && ((wantA && !predC) || (!wantA && !predA)) {
					both++
				}
			}
		}
		t.AddRow("device "+target,
			fmt.Sprintf("%d/%d", accepts, total),
			fmt.Sprintf("%d/%d", rejects, total),
			pct(float64(both)/float64(total)))
	}
	t.AddNote("extension: the paper's introduction motivates exactly this shared-space misactivation scenario")
	return t, nil
}
