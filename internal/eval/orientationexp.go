package eval

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"headtalk/internal/dataset"
	"headtalk/internal/dsp"
	"headtalk/internal/features"
	"headtalk/internal/ml"
	"headtalk/internal/orientation"
)

// Table3Definitions reproduces Table III: cross-session accuracy, FRR
// and FAR for the four facing/non-facing arc definitions.
func (r *Runner) Table3Definitions() (*Table, error) {
	samples, err := r.samples("tableIII", r.tableIIIConds(), false)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "table3",
		Title:  "Table III: facing/non-facing definitions ('Computer', D2, lab, cross-session)",
		Header: []string{"Definition", "Accuracy", "FRR", "FAR", "F1"},
	}
	for _, def := range orientation.Definitions() {
		ms, err := r.crossSession(samples, def)
		if err != nil {
			return nil, fmt.Errorf("eval: %s: %w", def.Name, err)
		}
		var frr, far float64
		for _, m := range ms {
			frr += m.FRR()
			far += m.FAR()
		}
		frr /= float64(len(ms))
		far /= float64(len(ms))
		t.AddRow(def.Name, pct(meanAccuracy(ms)), pct(frr), pct(far), pct(meanF1(ms)))
	}
	t.AddNote("paper: Definition-4 wins with 96.95%% accuracy, FRR 3.33%%, FAR 2.78%%")
	return t, nil
}

// Fig10PerAngle reproduces Fig. 10: per-angle accuracy of the
// Definition-4 model, including the borderline ±45/60/75° angles.
func (r *Runner) Fig10PerAngle() (*Table, error) {
	samples, err := r.samples("tableIII", r.tableIIIConds(), false)
	if err != nil {
		return nil, err
	}
	groups := bySession(samples)
	sessions := sortedKeys(groups)
	if len(sessions) < 2 {
		return nil, fmt.Errorf("eval: need 2 sessions")
	}

	correct := make(map[float64]int)
	total := make(map[float64]int)
	for _, trainSess := range sessions {
		model, err := r.trainOn(groups[trainSess], orientation.Definition4)
		if err != nil {
			return nil, err
		}
		for _, testSess := range sessions {
			if testSess == trainSess {
				continue
			}
			for _, s := range groups[testSess] {
				want := orientation.LabelNonFacing
				if orientation.GroundTruthFacing(s.Cond.AngleDeg) {
					want = orientation.LabelFacing
				}
				if model.Predict(s.Features) == want {
					correct[s.Cond.AngleDeg]++
				}
				total[s.Cond.AngleDeg]++
			}
		}
	}
	t := &Table{
		ID:     "fig10",
		Title:  "Fig. 10: accuracy per angle (Definition-4 model)",
		Header: []string{"Angle", "Zone", "Accuracy", "N"},
	}
	angles := append([]float64{}, dataset.AnglesWithBorderline...)
	sort.Float64s(angles)
	for _, a := range angles {
		if total[a] == 0 {
			continue
		}
		zone := "non-facing"
		if orientation.GroundTruthFacing(a) {
			zone = "facing"
		}
		if abs := a; abs < 0 {
			abs = -abs
		}
		switch a {
		case 45, -45, 60, -60, 75, -75:
			zone = "borderline"
		}
		t.AddRow(fmt.Sprintf("%+.0f°", a), zone, pct(float64(correct[a])/float64(total[a])), fmt.Sprintf("%d", total[a]))
	}
	t.AddNote("paper: >90%% at most angles; borderline ±45/60/75° form a soft boundary and score lower")
	return t, nil
}

// Fig11TrainingSize reproduces Fig. 11: F1 versus per-class training
// set size N = 5..100 step 5, 10 random draws per N.
func (r *Runner) Fig11TrainingSize() (*Table, error) {
	// A dedicated collection with extra repetitions so the reduced
	// scale still has ~100 samples per class in session 1.
	reps := 7
	if r.opts.Scale == dataset.ScalePaper {
		reps = 3
	}
	radials, distances, _ := gridFor(r.opts.Scale)
	var conds []dataset.Condition
	for sess := 1; sess <= 2; sess++ {
		for _, rad := range radials {
			for _, dist := range distances {
				for _, a := range dataset.Angles14 {
					for rep := 1; rep <= reps; rep++ {
						conds = append(conds, dataset.Condition{
							Session: sess, RadialDeg: rad, Distance: dist, AngleDeg: a, Rep: rep,
						})
					}
				}
			}
		}
	}
	samples, err := r.samples("trainsize", conds, false)
	if err != nil {
		return nil, err
	}
	groups := bySession(samples)
	trainX, trainY := labeled(groups[1], orientation.Definition4)
	testX, testY := labeled(groups[2], orientation.Definition4)

	// Partition the training pool by class.
	var pos, neg [][]float64
	for i, x := range trainX {
		if trainY[i] == orientation.LabelFacing {
			pos = append(pos, x)
		} else {
			neg = append(neg, x)
		}
	}
	maxN := len(pos)
	if len(neg) < maxN {
		maxN = len(neg)
	}

	t := &Table{
		ID:     "fig11",
		Title:  "Fig. 11: F1 vs per-class training set size (10 draws per N)",
		Header: []string{"N/class", "F1 mean", "F1 std", "F1 min", "F1 max"},
	}
	rng := rand.New(rand.NewPCG(r.opts.Seed, 0xF16))
	for n := 5; n <= 100 && n <= maxN; n += 5 {
		var f1s []float64
		for trial := 0; trial < 10; trial++ {
			x, y := drawBalanced(pos, neg, n, rng)
			model, err := orientation.Train(x, y, orientation.ModelConfig{Seed: r.opts.Seed + uint64(trial)})
			if err != nil {
				return nil, err
			}
			m, err := model.Evaluate(testX, testY)
			if err != nil {
				return nil, err
			}
			f1s = append(f1s, m.F1())
		}
		mean, std := ml.MeanStd(f1s)
		t.AddRow(fmt.Sprintf("%d", n), pct(mean), pct(std), pct(dsp.Min(f1s)), pct(dsp.Max(f1s)))
	}
	t.AddNote("paper: F1 exceeds 92%% with only 20 samples per class")
	return t, nil
}

// drawBalanced samples n feature vectors per class without
// replacement.
func drawBalanced(pos, neg [][]float64, n int, rng *rand.Rand) ([][]float64, []int) {
	var x [][]float64
	var y []int
	for _, idx := range rng.Perm(len(pos))[:n] {
		x = append(x, pos[idx])
		y = append(y, orientation.LabelFacing)
	}
	for _, idx := range rng.Perm(len(neg))[:n] {
		x = append(x, neg[idx])
		y = append(y, orientation.LabelNonFacing)
	}
	return x, y
}

// Classifiers reproduces the §IV-A model-selection comparison: SVM vs
// random forest vs decision tree vs kNN, cross-session F1 in lab and
// home.
func (r *Runner) Classifiers() (*Table, error) {
	labSamples, err := r.samples("tableIII", r.tableIIIConds(), false)
	if err != nil {
		return nil, err
	}
	homeConds := r.cellConds("home", "D2", "Computer")
	homeSamples, err := r.samples("homecell", homeConds, false)
	if err != nil {
		return nil, err
	}

	type clfSpec struct {
		name    string
		factory func(seed uint64) ml.Classifier
	}
	specs := []clfSpec{
		{"SVM (RBF)", func(seed uint64) ml.Classifier {
			s := ml.NewSVM(10, ml.RBFKernel{Gamma: 1.0 / 267})
			s.Seed = seed
			return s
		}},
		{"Random Forest (200 trees)", func(seed uint64) ml.Classifier {
			f := ml.NewRandomForest()
			f.Seed = seed
			return f
		}},
		{"Decision Tree (5 splits)", func(seed uint64) ml.Classifier {
			d := ml.NewDecisionTree()
			d.Seed = seed
			return d
		}},
		{"kNN (k=3)", func(uint64) ml.Classifier { return ml.NewKNN() }},
	}

	t := &Table{
		ID:     "classifiers",
		Title:  "Model selection: cross-session F1 by classifier (Definition-4)",
		Header: []string{"Classifier", "Lab F1", "Home F1", "Mean"},
	}
	evalClf := func(samples []*dataset.Sample, factory func(uint64) ml.Classifier) (float64, error) {
		groups := bySession(samples)
		sessions := sortedKeys(groups)
		var f1s []float64
		for _, trainSess := range sessions {
			x, y := labeled(groups[trainSess], orientation.Definition4)
			model, err := orientation.TrainWith(x, y, factory(r.opts.Seed))
			if err != nil {
				return 0, err
			}
			for _, testSess := range sessions {
				if testSess == trainSess {
					continue
				}
				tx, ty := labeled(groups[testSess], orientation.Definition4)
				m, err := model.Evaluate(tx, ty)
				if err != nil {
					return 0, err
				}
				f1s = append(f1s, m.F1())
			}
		}
		mean, _ := ml.MeanStd(f1s)
		return mean, nil
	}
	for _, spec := range specs {
		lab, err := evalClf(labSamples, spec.factory)
		if err != nil {
			return nil, fmt.Errorf("eval: %s (lab): %w", spec.name, err)
		}
		home, err := evalClf(homeSamples, spec.factory)
		if err != nil {
			return nil, fmt.Errorf("eval: %s (home): %w", spec.name, err)
		}
		t.AddRow(spec.name, pct(lab), pct(home), pct((lab+home)/2))
	}
	t.AddNote("paper: SVM exhibits the best average F1 across both settings and is used everywhere else")
	return t, nil
}

// cellConds builds one Dataset-1 cell with the standard 14 angles.
func (r *Runner) cellConds(roomName, device, word string) []dataset.Condition {
	radials, distances, _ := gridFor(r.opts.Scale)
	reps := r.singleCellReps()
	var out []dataset.Condition
	for sess := 1; sess <= dataset.Sessions; sess++ {
		for _, rad := range radials {
			for _, dist := range distances {
				for _, a := range dataset.Angles14 {
					for rep := 1; rep <= reps; rep++ {
						out = append(out, dataset.Condition{
							Room: roomName, Device: device, Word: word,
							Session: sess, RadialDeg: rad, Distance: dist, AngleDeg: a, Rep: rep,
						})
					}
				}
			}
		}
	}
	return out
}

// AblationFeatureGroups compares the full feature vector against its
// component groups (reverberation-only, directivity-only, GCC-only) on
// the Table III cell. Feature-group boundaries follow the layout
// documented in features.Extract.
func (r *Runner) AblationFeatureGroups() (*Table, error) {
	samples, err := r.samples("tableIII", r.tableIIIConds(), false)
	if err != nil {
		return nil, err
	}
	// D2 with maxLag 13: 6 pairs × (27+1) = 168 GCC+TDoA, +30 pair
	// stats, +3 SRP peaks, +5 SRP stats = 206 reverb features; the
	// remaining 61 are directivity features.
	slices := []struct {
		name     string
		lo, hi   int
		paperRef string
	}{
		{"full (reverb + directivity)", 0, 267, "the paper's configuration"},
		{"reverberation only", 0, 206, "SRP/GCC features (Insight 1)"},
		{"directivity only", 206, 267, "HLBR + low-band chunks (Insight 2)"},
		{"GCC windows + TDoA only", 0, 168, "the DoV-style core"},
	}
	t := &Table{
		ID:     "ablation-features",
		Title:  "Ablation: feature groups (cross-session accuracy, Definition-4)",
		Header: []string{"Features", "Dims", "Accuracy", "F1"},
	}
	for _, sl := range slices {
		sliced := make([]*dataset.Sample, len(samples))
		for i, s := range samples {
			if sl.hi > len(s.Features) {
				return nil, fmt.Errorf("eval: feature slice %s out of range (%d > %d)", sl.name, sl.hi, len(s.Features))
			}
			c := *s
			c.Features = s.Features[sl.lo:sl.hi]
			sliced[i] = &c
		}
		ms, err := r.crossSession(sliced, orientation.Definition4)
		if err != nil {
			return nil, fmt.Errorf("eval: ablation %s: %w", sl.name, err)
		}
		t.AddRow(sl.name, fmt.Sprintf("%d", sl.hi-sl.lo), pct(meanAccuracy(ms)), pct(meanF1(ms)))
	}
	return t, nil
}

// AblationPHAT compares PHAT-whitened GCC features against plain
// cross-correlation features.
func (r *Runner) AblationPHAT() (*Table, error) {
	withPHAT, err := r.samples("tableIII", r.tableIIIConds(), false)
	if err != nil {
		return nil, err
	}
	// Regenerate the same conditions without PHAT weighting.
	genNoPhat := dataset.NewGenerator(r.opts.Seed)
	genNoPhat.FeatureConfigFn = func(cfg features.Config) features.Config {
		cfg.UsePHAT = false
		return cfg
	}
	r.progressf("generating tableIII (no PHAT): %d samples...", len(r.tableIIIConds()))
	var noPHAT []*dataset.Sample
	for _, c := range r.tableIIIConds() {
		s, err := genNoPhat.Generate(c)
		if err != nil {
			return nil, err
		}
		noPHAT = append(noPHAT, s)
	}

	t := &Table{
		ID:     "ablation-phat",
		Title:  "Ablation: PHAT weighting (cross-session, Definition-4)",
		Header: []string{"Weighting", "Accuracy", "F1"},
	}
	for _, v := range []struct {
		name    string
		samples []*dataset.Sample
	}{{"PHAT (paper)", withPHAT}, {"plain cross-correlation", noPHAT}} {
		ms, err := r.crossSession(v.samples, orientation.Definition4)
		if err != nil {
			return nil, fmt.Errorf("eval: ablation %s: %w", v.name, err)
		}
		t.AddRow(v.name, pct(meanAccuracy(ms)), pct(meanF1(ms)))
	}
	return t, nil
}

// sortedKeys returns map keys in ascending order.
func sortedKeys(m map[int][]*dataset.Sample) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
