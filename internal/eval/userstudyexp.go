package eval

import (
	"fmt"
	"strings"

	"headtalk/internal/userstudy"
)

// UserStudy reproduces §V: Table V's survey tallies, the takeaway
// percentages and the SUS comparison.
func (r *Runner) UserStudy() (*Table, error) {
	t := &Table{
		ID:     "userstudy",
		Title:  "§V: user study (published responses, re-analyzed)",
		Header: []string{"Question", "Responses", "Top-2 favorable"},
	}
	for _, q := range userstudy.TableV() {
		var parts []string
		for i, opt := range q.Options {
			parts = append(parts, fmt.Sprintf("%s (%d)", opt, q.Counts[i]))
		}
		top2, err := q.TopTwoFraction()
		if err != nil {
			return nil, err
		}
		t.AddRow(truncate(q.Question, 58), strings.Join(parts, ", "), pct(top2))
	}
	ht, existing := userstudy.PaperSUS()
	t.AddNote("SUS HeadTalk: %s (above the 68 benchmark: %v)", ht, ht.AboveAverage())
	t.AddNote("SUS existing mute-button control: %s", existing)
	t.AddNote("takeaways: 95%% found HeadTalk easy, 70%% would deploy it, ~70%% rate it better than existing controls")
	return t, nil
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
