package features

import (
	"fmt"

	"headtalk/internal/audio"
	"headtalk/internal/dsp"
	"headtalk/internal/srp"
)

// Workspace owns every scratch buffer orientation feature extraction
// needs — the focus-window headers, the GCC/SRP workspace, the
// directivity spectra and the feature vectors themselves — so a warm
// workspace extracts with zero steady-state allocation. Results alias
// workspace memory and are valid until the next call; a Workspace is
// not safe for concurrent use (one per serving worker).
type Workspace struct {
	srpWS srp.Workspace

	// Focus-window channel headers: per item, subslices of the input
	// channels (no samples are copied).
	items     [][][]float64
	chanHeads [][]float64

	mono   []float64
	scaled []float64
	spec   []complex128
	mag    []float64
	peaks  []dsp.Peak

	vecBack []float64
	vecs    [][]float64
	starts  []int

	oneRec [1]*audio.Recording
}

// Extract is features.Extract running entirely on workspace scratch.
// The returned vector is valid until the next call on the same
// workspace.
func (ws *Workspace) Extract(rec *audio.Recording, cfg Config) ([]float64, error) {
	ws.oneRec[0] = rec
	vecs, err := ws.ExtractBatch(ws.oneRec[:], cfg)
	if err != nil {
		return nil, err
	}
	return vecs[0], nil
}

// ExtractBatch extracts orientation features for several recordings in
// one batched sweep: every capture's focus window is located first,
// then every channel of every same-FFT-size capture is transformed and
// PHAT-whitened back to back over one shared plan (srp.Workspace's
// batch path), and only then do the per-capture pair inverses and
// feature assembly run. Amortizing the forward transforms this way is
// what the serving engine's batch collector buys: the plan's tables
// stay cache-hot across the whole batch.
//
// The returned vectors alias workspace memory: valid until the next
// workspace call.
func (ws *Workspace) ExtractBatch(recs []*audio.Recording, cfg Config) ([][]float64, error) {
	if cfg.MaxLag <= 0 {
		return nil, fmt.Errorf("features: MaxLag must be positive, got %d", cfg.MaxLag)
	}
	for _, rec := range recs {
		if len(rec.Channels) < 2 {
			return nil, fmt.Errorf("features: need >= 2 channels, have %d", len(rec.Channels))
		}
	}

	// Phase one: focus windows. Channel headers only — no samples move.
	totalChans := 0
	for _, rec := range recs {
		totalChans += len(rec.Channels)
	}
	if cap(ws.items) < len(recs) {
		ws.items = make([][][]float64, len(recs))
	}
	ws.items = ws.items[:len(recs)]
	if cap(ws.chanHeads) < totalChans {
		ws.chanHeads = make([][]float64, totalChans)
	}
	ws.chanHeads = ws.chanHeads[:totalChans]
	at := 0
	for k, rec := range recs {
		start, length := ws.focusBounds(rec, cfg.AnalysisWindow)
		item := ws.chanHeads[at : at : at+len(rec.Channels)]
		for _, ch := range rec.Channels {
			item = append(item, ch[start:start+length])
		}
		at += len(rec.Channels)
		ws.items[k] = item
	}

	// Phase two: the batched GCC forward sweep.
	var sets [][]srp.PairGCC
	if !cfg.DisableReverbFeatures {
		var err error
		sets, err = ws.srpWS.AllPairsBatch(ws.items, srp.PairOptions{
			MaxLag:     cfg.MaxLag,
			PHAT:       cfg.UsePHAT,
			SampleRate: cfg.SampleRate,
			BandLo:     cfg.GCCBandLo,
			BandHi:     cfg.GCCBandHi,
		})
		if err != nil {
			return nil, fmt.Errorf("features: computing GCCs: %w", err)
		}
	}

	// Phase three: per-capture feature assembly into one backing array.
	if cap(ws.starts) < len(recs)+1 {
		ws.starts = make([]int, len(recs)+1)
	}
	ws.starts = ws.starts[:len(recs)+1]
	buf := ws.vecBack[:0]
	for k, rec := range recs {
		ws.starts[k] = len(buf)
		var err error
		buf, err = ws.assemble(buf, rec.SampleRate, ws.items[k], setFor(sets, k), cfg)
		if err != nil {
			return nil, err
		}
	}
	ws.starts[len(recs)] = len(buf)
	ws.vecBack = buf

	if cap(ws.vecs) < len(recs) {
		ws.vecs = make([][]float64, len(recs))
	}
	ws.vecs = ws.vecs[:len(recs)]
	for k := range recs {
		lo, hi := ws.starts[k], ws.starts[k+1]
		ws.vecs[k] = buf[lo:hi:hi]
	}
	return ws.vecs, nil
}

func setFor(sets [][]srp.PairGCC, k int) []srp.PairGCC {
	if sets == nil {
		return nil
	}
	return sets[k]
}

// focusBounds locates the highest-energy window of the requested
// length on the channel mean with a coarse 1024-sample hop — the same
// search Extract has always run, minus the allocations. It returns the
// window's start and length (the whole recording when it already fits).
func (ws *Workspace) focusBounds(rec *audio.Recording, window int) (int, int) {
	n := rec.Len()
	if window < 0 {
		return 0, n
	}
	if window == 0 {
		window = 32768
	}
	if n <= window {
		return 0, n
	}
	mono := rec.MonoInto(ws.mono)
	ws.mono = mono
	const hop = 1024
	bestStart, bestEnergy := 0, -1.0
	for start := 0; start+window <= n; start += hop {
		var acc float64
		for i := start; i < start+window; i += 4 { // stride-4 estimate
			acc += mono[i] * mono[i]
		}
		if acc > bestEnergy {
			bestEnergy = acc
			bestStart = start
		}
	}
	return bestStart, window
}

// assemble appends one capture's feature vector to buf: the
// reverberation group (pair GCC windows, TDoAs, statistics, SRP peaks
// and statistics) followed by the directivity group (HLBR and the
// low-band chunk statistics).
func (ws *Workspace) assemble(buf []float64, sampleRate float64, channels [][]float64, pairs []srp.PairGCC, cfg Config) ([]float64, error) {
	startLen := len(buf)

	if !cfg.DisableReverbFeatures {
		for _, p := range pairs {
			buf = append(buf, p.R...)
			buf = append(buf, float64(p.TDoA))
		}
		if !cfg.GCCOnly {
			for _, p := range pairs {
				buf = appendStats(buf, p.R)
			}
			curve := ws.srpWS.SRP(pairs)
			ws.peaks = dsp.TopPeaksInto(ws.peaks, curve, 3)
			for i := 0; i < 3; i++ {
				if i < len(ws.peaks) {
					buf = append(buf, ws.peaks[i].Value)
				} else {
					buf = append(buf, 0)
				}
			}
			buf = appendStats(buf, curve)
		}
	}

	if !cfg.DisableDirectivityFeatures && !cfg.GCCOnly {
		buf = ws.appendDirectivity(buf, sampleRate, channels, cfg)
	}

	if len(buf) == startLen {
		return nil, fmt.Errorf("features: all feature groups disabled")
	}
	return buf, nil
}

// appendStats appends the paper's five curve statistics — kurtosis,
// skewness, maximum, mean absolute deviation, standard deviation.
func appendStats(buf, x []float64) []float64 {
	return append(buf, dsp.Kurtosis(x), dsp.Skewness(x), dsp.Max(x), dsp.MAD(x), dsp.Std(x))
}

// appendDirectivity appends HLBR and the low-band chunk statistics,
// computed from the unit-RMS-normalized channel mean (§IV-B12: the
// features must describe spectral shape, not absolute loudness).
func (ws *Workspace) appendDirectivity(buf []float64, sampleRate float64, channels [][]float64, cfg Config) []float64 {
	hdr := audio.Recording{SampleRate: sampleRate, Channels: channels}
	mono := hdr.MonoInto(ws.mono)
	ws.mono = mono
	if r := dsp.RMS(mono); r > 0 {
		if cap(ws.scaled) < len(mono) {
			ws.scaled = make([]float64, len(mono))
		}
		scaled := ws.scaled[:len(mono)]
		for i, v := range mono {
			scaled[i] = v / r
		}
		mono = scaled
	}
	n := len(mono)
	spec := dsp.RFFT(ws.spec, mono)
	ws.spec = spec
	fs := cfg.SampleRate
	if fs == 0 {
		fs = sampleRate
	}

	low := dsp.BandEnergy(spec, n, fs, cfg.LowBandLo, cfg.LowBandHi)
	high := dsp.BandEnergy(spec, n, fs, cfg.HighBandLo, cfg.HighBandHi)
	hlbr := 0.0
	if low > 0 {
		hlbr = high / low
	}
	buf = append(buf, hlbr)

	chunks := cfg.LowBandChunks
	if chunks <= 0 {
		chunks = 20
	}
	width := (cfg.LowBandHi - cfg.LowBandLo) / float64(chunks)
	for c := 0; c < chunks; c++ {
		lo := cfg.LowBandLo + float64(c)*width
		hi := lo + width
		loBin := dsp.FreqBin(lo, n, fs)
		hiBin := dsp.FreqBin(hi, n, fs)
		if hiBin >= len(spec) {
			hiBin = len(spec) - 1
		}
		var mags []float64
		if hiBin >= loBin {
			mags = dsp.MagnitudeInto(ws.mag[:0], spec[loBin:hiBin+1])
			ws.mag = mags
		}
		buf = append(buf, dsp.Mean(mags), dsp.RMS(mags), dsp.Std(mags))
	}
	return buf
}
