package features

import (
	"math/rand/v2"
	"testing"

	"headtalk/internal/audio"
)

// testRecording builds a 4-channel noise recording.
func testRecording(n int, seed uint64) *audio.Recording {
	rng := rand.New(rand.NewPCG(seed, 1))
	rec := audio.NewRecording(48000, 4, n)
	for _, ch := range rec.Channels {
		for i := range ch {
			ch[i] = rng.NormFloat64()
		}
	}
	return rec
}

func TestExtractVectorLayout(t *testing.T) {
	// For 4 channels and maxLag 13 the documented layout is 267 dims:
	// 6×27 GCC + 6 TDoA + 30 stats + 3 peaks + 5 SRP stats + 1 HLBR +
	// 60 chunk stats.
	rec := testRecording(20000, 1)
	cfg := DefaultConfig(13, 48000)
	feats, err := Extract(rec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(feats) != 267 {
		t.Fatalf("feature vector length %d, want 267", len(feats))
	}
}

func TestExtractD3Layout(t *testing.T) {
	// maxLag 10 => 6×21 + 6 + 30 + 3 + 5 + 61 = 231.
	rec := testRecording(20000, 2)
	cfg := DefaultConfig(10, 48000)
	feats, err := Extract(rec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := 6*21 + 6 + 30 + 3 + 5 + 61
	if len(feats) != want {
		t.Fatalf("feature vector length %d, want %d", len(feats), want)
	}
}

func TestExtractGCCOnly(t *testing.T) {
	rec := testRecording(20000, 3)
	cfg := DefaultConfig(13, 48000)
	cfg.GCCOnly = true
	feats, err := Extract(rec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(feats) != 168 {
		t.Fatalf("GCC-only length %d, want 168", len(feats))
	}
	// And it must be a prefix of the full vector (the DoV-baseline
	// slicing relies on this).
	full, err := Extract(testRecording(20000, 3), DefaultConfig(13, 48000))
	if err != nil {
		t.Fatal(err)
	}
	for i := range feats {
		if feats[i] != full[i] {
			t.Fatalf("GCC-only is not a prefix of the full vector at %d", i)
		}
	}
}

func TestExtractFeatureGroupToggles(t *testing.T) {
	rec := testRecording(20000, 4)
	cfg := DefaultConfig(13, 48000)
	cfg.DisableDirectivityFeatures = true
	reverbOnly, err := Extract(rec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(reverbOnly) != 206 {
		t.Fatalf("reverb-only length %d, want 206", len(reverbOnly))
	}
	cfg = DefaultConfig(13, 48000)
	cfg.DisableReverbFeatures = true
	dirOnly, err := Extract(rec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(dirOnly) != 61 {
		t.Fatalf("directivity-only length %d, want 61", len(dirOnly))
	}
	cfg.DisableDirectivityFeatures = true
	if _, err := Extract(rec, cfg); err == nil {
		t.Error("expected error with all groups disabled")
	}
}

func TestExtractValidation(t *testing.T) {
	rec := testRecording(20000, 5)
	cfg := DefaultConfig(0, 48000)
	if _, err := Extract(rec, cfg); err == nil {
		t.Error("expected error for zero MaxLag")
	}
	mono := audio.NewRecording(48000, 1, 1000)
	if _, err := Extract(mono, DefaultConfig(13, 48000)); err == nil {
		t.Error("expected error for single channel")
	}
}

func TestFocusWindowSelectsEnergy(t *testing.T) {
	rec := audio.NewRecording(48000, 2, 60000)
	// Energy burst in samples 40000..50000.
	rng := rand.New(rand.NewPCG(6, 7))
	for _, ch := range rec.Channels {
		for i := 40000; i < 50000; i++ {
			ch[i] = rng.NormFloat64()
		}
	}
	out := focusWindow(rec, 8192)
	if out.Len() != 8192 {
		t.Fatalf("window length %d", out.Len())
	}
	var energy float64
	for _, v := range out.Channels[0] {
		energy += v * v
	}
	if energy < 1000 {
		t.Errorf("focus window missed the energy burst (E=%g)", energy)
	}
}

func TestFocusWindowShortInputUntouched(t *testing.T) {
	rec := testRecording(1000, 8)
	out := focusWindow(rec, 8192)
	if out.Len() != 1000 {
		t.Error("short input should pass through")
	}
}

func TestFocusWindowDisabled(t *testing.T) {
	rec := testRecording(30000, 9)
	out := focusWindow(rec, -1)
	if out.Len() != 30000 {
		t.Error("negative window should disable cropping")
	}
}

func TestExtractDeterministic(t *testing.T) {
	cfg := DefaultConfig(13, 48000)
	a, err := Extract(testRecording(20000, 10), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Extract(testRecording(20000, 10), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic feature %d", i)
		}
	}
}
