package features

import (
	"math"
	"math/rand/v2"
	"testing"

	"headtalk/internal/audio"
)

func synthRecording(r *rand.Rand, nch, n int) *audio.Recording {
	rec := audio.NewRecording(48000, nch, n)
	for c := range rec.Channels {
		for i := range rec.Channels[c] {
			rec.Channels[c][i] = math.Sin(2*math.Pi*float64(i)/29.0+0.3*float64(c)) + 0.1*r.NormFloat64()
		}
	}
	return rec
}

func vectorsEqual(t *testing.T, want, got []float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("feature count: want %d, got %d", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("feature %d: want %g, got %g (not bit-identical)", i, want[i], got[i])
		}
	}
}

// The workspace extractor must reproduce Extract bit for bit across
// every feature-group configuration — it is the same arithmetic on
// reused buffers, and the serving path swaps it in silently.
func TestWorkspaceExtractMatchesExtract(t *testing.T) {
	r := rand.New(rand.NewPCG(5, 0))
	recs := []*audio.Recording{
		synthRecording(r, 4, 4000),
		synthRecording(r, 2, 1500),
		synthRecording(r, 4, 50000), // longer than the analysis window: focus search runs
	}
	base := DefaultConfig(27, 48000)
	configs := []Config{
		base,
		func() Config { c := base; c.GCCOnly = true; return c }(),
		func() Config { c := base; c.DisableReverbFeatures = true; return c }(),
		func() Config { c := base; c.DisableDirectivityFeatures = true; return c }(),
		func() Config { c := base; c.UsePHAT = false; c.AnalysisWindow = -1; return c }(),
		func() Config { c := base; c.AnalysisWindow = 2048; return c }(),
	}
	var ws Workspace
	for ci, cfg := range configs {
		for ri, rec := range recs {
			want, err := Extract(rec, cfg)
			if err != nil {
				t.Fatalf("config %d rec %d: %v", ci, ri, err)
			}
			got, err := ws.Extract(rec, cfg)
			if err != nil {
				t.Fatalf("config %d rec %d (workspace): %v", ci, ri, err)
			}
			vectorsEqual(t, want, got)
		}
	}
}

// A batch must return, per capture, exactly the single-capture vector —
// including when captures differ in channel count and FFT size.
func TestWorkspaceExtractBatchMatchesSingles(t *testing.T) {
	r := rand.New(rand.NewPCG(9, 0))
	recs := []*audio.Recording{
		synthRecording(r, 4, 4000),
		synthRecording(r, 3, 4000),
		synthRecording(r, 2, 1500),
		synthRecording(r, 4, 50000),
	}
	cfg := DefaultConfig(21, 48000)
	var ws Workspace
	vecs, err := ws.ExtractBatch(recs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(vecs) != len(recs) {
		t.Fatalf("vector count: want %d, got %d", len(recs), len(vecs))
	}
	for k, rec := range recs {
		want, err := Extract(rec, cfg)
		if err != nil {
			t.Fatal(err)
		}
		vectorsEqual(t, want, vecs[k])
	}
}

func TestWorkspaceExtractErrors(t *testing.T) {
	var ws Workspace
	cfg := DefaultConfig(27, 48000)
	if _, err := ws.Extract(audio.NewRecording(48000, 1, 100), cfg); err == nil {
		t.Fatal("single channel: want error")
	}
	bad := cfg
	bad.MaxLag = 0
	if _, err := ws.Extract(audio.NewRecording(48000, 4, 100), bad); err == nil {
		t.Fatal("MaxLag=0: want error")
	}
	disabled := cfg
	disabled.DisableReverbFeatures = true
	disabled.DisableDirectivityFeatures = true
	if _, err := ws.Extract(synthRecording(rand.New(rand.NewPCG(1, 0)), 4, 500), disabled); err == nil {
		t.Fatal("all groups disabled: want error")
	}
}

// Steady-state extraction through a warm workspace must not allocate:
// the serving arenas' zero-alloc ProcessWake pin builds on this.
func TestWorkspaceExtractAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; pin holds in normal builds")
	}
	r := rand.New(rand.NewPCG(13, 0))
	rec := synthRecording(r, 4, 48000) // > analysis window: focus search included
	cfg := DefaultConfig(27, 48000)
	var ws Workspace
	if _, err := ws.Extract(rec, cfg); err != nil { // warm-up
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := ws.Extract(rec, cfg); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm workspace Extract allocated %.1f times per run, want 0", allocs)
	}
}
