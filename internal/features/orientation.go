// Package features assembles the classifier inputs described in the
// paper's §III-B3: speech-reverberation features (SRP-PHAT peaks, GCC
// windows and their statistics) and speech-directivity features (the
// high/low band ratio and 20-chunk low-band statistics).
package features

import (
	"fmt"

	"headtalk/internal/audio"
	"headtalk/internal/dsp"
	"headtalk/internal/srp"
)

// Config controls orientation feature extraction.
type Config struct {
	// MaxLag is the GCC/SRP half-window in samples (±25/27/21 at
	// 48 kHz for D1/D2/D3).
	MaxLag int
	// SampleRate of the recordings.
	SampleRate float64
	// LowBandLo/LowBandHi bound the directivity low band (paper:
	// 100–400 Hz); HighBandLo/HighBandHi the high band (500–4000 Hz).
	LowBandLo, LowBandHi   float64
	HighBandLo, HighBandHi float64
	// LowBandChunks is the number of low-band sub-chunks (paper: 20).
	LowBandChunks int
	// GCCBandLo/GCCBandHi band-limit the whitened cross-spectrum used
	// for GCC/SRP (default 100–8000 Hz: the region where speech
	// actually carries energy).
	GCCBandLo, GCCBandHi float64
	// UsePHAT selects PHAT weighting (true, the paper's choice) or
	// plain cross-correlation (the ablation baseline).
	UsePHAT bool
	// DisableReverbFeatures / DisableDirectivityFeatures drop one
	// feature group for the feature-group ablation.
	DisableReverbFeatures      bool
	DisableDirectivityFeatures bool
	// GCCOnly reproduces the Ahuja et al. (DoV) baseline: per-pair GCC
	// windows + TDoA only, no SRP aggregation, no directivity features.
	GCCOnly bool
	// AnalysisWindow restricts feature computation to the
	// highest-energy window of this many samples (selected on the
	// channel mean, applied identically to every channel so
	// inter-channel delays are preserved). Zero selects 32768 samples
	// (~0.68 s at 48 kHz, covering a whole wake word — shorter windows
	// land on different phoneme mixes per utterance and roughly double
	// the cross-session error); negative disables windowing.
	AnalysisWindow int
}

// DefaultConfig returns the paper's feature configuration for a device
// lag window.
func DefaultConfig(maxLag int, sampleRate float64) Config {
	return Config{
		MaxLag:        maxLag,
		SampleRate:    sampleRate,
		LowBandLo:     100,
		LowBandHi:     400,
		HighBandLo:    500,
		HighBandHi:    4000,
		LowBandChunks: 20,
		GCCBandLo:     100,
		GCCBandHi:     8000,
		UsePHAT:       true,
	}
}

// Extract computes the orientation feature vector from a multi-channel
// recording (already preprocessed/bandpassed). The vector layout for a
// 4-channel capture with maxLag=13 is:
//
//	6 pairs × 27 GCC values            = 162
//	6 pair TDoAs                       = 6
//	6 pairs × 5 GCC statistics         = 30
//	SRP top-3 peak values              = 3
//	5 SRP statistics                   = 5
//	HLBR                               = 1
//	20 low-band chunks × (mean,RMS,std)= 60
//
// for 267 features total (the paper's "6×27+6 = 168" reverberation
// core plus statistical summaries and directivity features).
func Extract(rec *audio.Recording, cfg Config) ([]float64, error) {
	if len(rec.Channels) < 2 {
		return nil, fmt.Errorf("features: need >= 2 channels, have %d", len(rec.Channels))
	}
	if cfg.MaxLag <= 0 {
		return nil, fmt.Errorf("features: MaxLag must be positive, got %d", cfg.MaxLag)
	}
	rec = focusWindow(rec, cfg.AnalysisWindow)
	var out []float64

	if !cfg.DisableReverbFeatures {
		pairs, err := srp.AllPairs(rec.Channels, srp.PairOptions{
			MaxLag:     cfg.MaxLag,
			PHAT:       cfg.UsePHAT,
			SampleRate: cfg.SampleRate,
			BandLo:     cfg.GCCBandLo,
			BandHi:     cfg.GCCBandHi,
		})
		if err != nil {
			return nil, fmt.Errorf("features: computing GCCs: %w", err)
		}
		for _, p := range pairs {
			out = append(out, p.R...)
			out = append(out, float64(p.TDoA))
		}
		if !cfg.GCCOnly {
			for _, p := range pairs {
				out = append(out, statSummary(p.R)...)
			}
			curve := srp.SRP(pairs)
			peaks := dsp.TopPeaks(curve, 3)
			for i := 0; i < 3; i++ {
				if i < len(peaks) {
					out = append(out, peaks[i].Value)
				} else {
					out = append(out, 0)
				}
			}
			out = append(out, statSummary(curve)...)
		}
	}

	if !cfg.DisableDirectivityFeatures && !cfg.GCCOnly {
		out = append(out, directivityFeatures(rec, cfg)...)
	}

	if len(out) == 0 {
		return nil, fmt.Errorf("features: all feature groups disabled")
	}
	return out, nil
}

// focusWindow crops all channels to the highest-energy window of the
// requested length, found on the channel mean with a coarse 1024-sample
// hop. It bounds the GCC FFT sizes and anchors the features to the
// utterance (rather than trailing silence) without touching
// inter-channel alignment.
func focusWindow(rec *audio.Recording, window int) *audio.Recording {
	if window < 0 {
		return rec
	}
	if window == 0 {
		window = 32768
	}
	n := rec.Len()
	if n <= window {
		return rec
	}
	mono := rec.Mono()
	const hop = 1024
	bestStart, bestEnergy := 0, -1.0
	for start := 0; start+window <= n; start += hop {
		var acc float64
		for i := start; i < start+window; i += 4 { // stride-4 estimate
			acc += mono[i] * mono[i]
		}
		if acc > bestEnergy {
			bestEnergy = acc
			bestStart = start
		}
	}
	out := &audio.Recording{SampleRate: rec.SampleRate, Channels: make([][]float64, len(rec.Channels))}
	for i, ch := range rec.Channels {
		out.Channels[i] = ch[bestStart : bestStart+window]
	}
	return out
}

// statSummary returns the paper's five statistics of a curve:
// kurtosis, skewness, maximum, mean absolute deviation and standard
// deviation.
func statSummary(x []float64) []float64 {
	return []float64{
		dsp.Kurtosis(x),
		dsp.Skewness(x),
		dsp.Max(x),
		dsp.MAD(x),
		dsp.Std(x),
	}
}

// directivityFeatures computes HLBR and the 20-chunk low-band
// statistics from the mean of all channels. The window is normalized
// to unit RMS first: orientation lives in the spectral *shape*, and
// without normalization the chunk magnitudes scale with absolute
// loudness, throwing a 60/80 dB utterance far outside a 70 dB-trained
// model's feature distribution (§IV-B12).
func directivityFeatures(rec *audio.Recording, cfg Config) []float64 {
	mono := rec.Mono()
	if r := dsp.RMS(mono); r > 0 {
		scaled := make([]float64, len(mono))
		for i, v := range mono {
			scaled[i] = v / r
		}
		mono = scaled
	}
	n := len(mono)
	spec := dsp.RFFT(nil, mono)
	fs := cfg.SampleRate
	if fs == 0 {
		fs = rec.SampleRate
	}

	low := dsp.BandEnergy(spec, n, fs, cfg.LowBandLo, cfg.LowBandHi)
	high := dsp.BandEnergy(spec, n, fs, cfg.HighBandLo, cfg.HighBandHi)
	hlbr := 0.0
	if low > 0 {
		hlbr = high / low
	}
	out := []float64{hlbr}

	chunks := cfg.LowBandChunks
	if chunks <= 0 {
		chunks = 20
	}
	width := (cfg.LowBandHi - cfg.LowBandLo) / float64(chunks)
	// One magnitude scratch reused across chunks (chunk widths are a
	// few bins each; the largest bounds them all).
	maxChunkBins := dsp.FreqBin(cfg.LowBandHi, n, fs) - dsp.FreqBin(cfg.LowBandLo, n, fs) + 1
	magScratch := make([]float64, 0, maxChunkBins)
	for c := 0; c < chunks; c++ {
		lo := cfg.LowBandLo + float64(c)*width
		hi := lo + width
		loBin := dsp.FreqBin(lo, n, fs)
		hiBin := dsp.FreqBin(hi, n, fs)
		if hiBin >= len(spec) {
			hiBin = len(spec) - 1
		}
		var mags []float64
		if hiBin >= loBin {
			mags = dsp.MagnitudeInto(magScratch[:0], spec[loBin:hiBin+1])
		}
		out = append(out, dsp.Mean(mags), dsp.RMS(mags), dsp.Std(mags))
	}
	return out
}
