package speech

import (
	"math"
	"math/rand/v2"

	"headtalk/internal/audio"
	"headtalk/internal/dsp"
)

// LoudspeakerProfile models the electro-acoustic chain a replay attack
// passes through: recording + DAC + amplifier + driver. The parameters
// reproduce the paper's Fig. 3 observations — replayed audio loses the
// live voice's exponential high-band decay and instead shows a lower,
// flatter (more uniform) spectrum above ~4 kHz, caused by driver
// roll-off plus wideband distortion products and the playback noise
// floor.
type LoudspeakerProfile struct {
	Name string

	// LowCutoff is the driver's low-frequency -3 dB point (small
	// drivers can't reproduce deep bass).
	LowCutoff float64
	// HighCutoff is where the driver's response starts rolling off.
	HighCutoff float64
	// HighOrder is the roll-off steepness (Butterworth order).
	HighOrder int
	// Distortion is the amount of memoryless soft-clipping
	// nonlinearity (0 = clean). Harmonic products from distortion
	// spread energy uniformly into the high band.
	Distortion float64
	// NoiseFloorDB is the playback chain's noise floor relative to
	// signal peak (e.g. -55 dB). Flat noise is the dominant >4 kHz
	// content for band-limited drivers.
	NoiseFloorDB float64
	// ConeResonance adds a mild resonant peak typical of small
	// enclosures (Hz, 0 = none).
	ConeResonance float64
}

// Replay device profiles used in the paper's experiments (§III-A,
// Dataset-2).
var (
	// SonySRSX5 is a high-end portable speaker: wide response but
	// still band-limited above ~12 kHz with audible DSP noise floor.
	SonySRSX5 = LoudspeakerProfile{
		Name:          "Sony SRS-X5",
		LowCutoff:     60,
		HighCutoff:    9000,
		HighOrder:     3,
		Distortion:    0.15,
		NoiseFloorDB:  -52,
		ConeResonance: 180,
	}
	// GalaxyS21 is a phone speaker: strong low cut, early high
	// roll-off, more distortion.
	GalaxyS21 = LoudspeakerProfile{
		Name:          "Samsung Galaxy S21 Ultra",
		LowCutoff:     350,
		HighCutoff:    7000,
		HighOrder:     2,
		Distortion:    0.3,
		NoiseFloorDB:  -46,
		ConeResonance: 900,
	}
	// SmartTV approximates the accidental-activation source of the
	// threat model (a TV saying the wake word).
	SmartTV = LoudspeakerProfile{
		Name:          "Smart TV",
		LowCutoff:     120,
		HighCutoff:    8000,
		HighOrder:     2,
		Distortion:    0.2,
		NoiseFloorDB:  -48,
		ConeResonance: 300,
	}
)

// ReplayProfiles returns the built-in loudspeaker profiles.
func ReplayProfiles() []LoudspeakerProfile {
	return []LoudspeakerProfile{SonySRSX5, GalaxyS21, SmartTV}
}

// RenderMechanical passes a dry (mouth-reference) utterance through the
// loudspeaker chain and returns the replayed waveform at the same
// sample rate. rng drives the playback noise floor.
func RenderMechanical(dry *audio.Buffer, profile LoudspeakerProfile, rng *rand.Rand) *audio.Buffer {
	fs := dry.SampleRate
	x := make([]float64, len(dry.Samples))
	copy(x, dry.Samples)

	// Driver band-limiting.
	if hp, err := dsp.NewButterworthHighPass(2, profile.LowCutoff, fs); err == nil {
		x = hp.Apply(x)
	}
	if profile.HighCutoff > 0 && profile.HighCutoff < fs/2 {
		if lp, err := dsp.NewButterworthLowPass(profile.HighOrder, profile.HighCutoff, fs); err == nil {
			x = lp.Apply(x)
		}
	}

	// Enclosure resonance: a gentle peaking boost.
	if profile.ConeResonance > 0 {
		var res resonator
		res.set(profile.ConeResonance, profile.ConeResonance/2, fs)
		for i, v := range x {
			x[i] = v + 0.25*res.process(v)
		}
	}

	// Memoryless soft clipping -> odd harmonics spread into the high
	// band, flattening the >4 kHz spectrum.
	if profile.Distortion > 0 {
		drive := 1 + 6*profile.Distortion
		norm := math.Tanh(drive)
		for i, v := range x {
			x[i] = math.Tanh(v*drive) / norm
		}
	}

	// Playback noise floor relative to peak.
	peak := dsp.MaxAbs(x)
	if peak > 0 && profile.NoiseFloorDB < 0 {
		level := peak * math.Pow(10, profile.NoiseFloorDB/20)
		for i := range x {
			x[i] += level * rng.NormFloat64()
		}
	}

	out := &audio.Buffer{SampleRate: fs, Samples: dsp.Normalize(x)}
	for i := range out.Samples {
		out.Samples[i] *= 0.9
	}
	return out
}
