package speech

import (
	"math"
	"math/rand/v2"

	"headtalk/internal/audio"
	"headtalk/internal/dsp"
)

// resonator is a Klatt-style two-pole digital resonator with unity DC
// gain. Coefficients are refreshed at the control rate rather than per
// sample.
type resonator struct {
	a, b, c float64
	y1, y2  float64
}

// set tunes the resonator to center frequency f and bandwidth bw at
// sample rate fs.
func (r *resonator) set(f, bw, fs float64) {
	if f <= 0 {
		f = 1
	}
	if f >= fs/2 {
		f = fs/2 - 1
	}
	c := -math.Exp(-2 * math.Pi * bw / fs)
	b := 2 * math.Exp(-math.Pi*bw/fs) * math.Cos(2*math.Pi*f/fs)
	r.a = 1 - b - c
	r.b = b
	r.c = c
}

func (r *resonator) process(x float64) float64 {
	y := r.a*x + r.b*r.y1 + r.c*r.y2
	r.y2 = r.y1
	r.y1 = y
	return y
}

// onePoleLP is a leaky integrator used for glottal spectral tilt.
type onePoleLP struct {
	a, y float64
}

func (p *onePoleLP) set(fc, fs float64) {
	p.a = math.Exp(-2 * math.Pi * fc / fs)
}

func (p *onePoleLP) process(x float64) float64 {
	p.y = (1-p.a)*x + p.a*p.y
	return p.y
}

// controlInterval is how often (in samples) formant targets and pitch
// are re-evaluated. 1 ms at 48 kHz.
const controlInterval = 48

// Synthesize renders word with the given voice at sample rate fs. The
// output is peak-normalized to 0.9 and includes natural pitch
// declination, formant transitions, jitter/shimmer and breath noise.
// The same (word, voice, rng-state) triple always yields the same
// waveform.
func Synthesize(word WakeWord, voice VoiceProfile, fs float64, rng *rand.Rand) *audio.Buffer {
	segs := buildSegments(word, voice)
	total := 0
	for _, s := range segs {
		total += s.samples(fs)
	}
	out := audio.NewBuffer(fs, total)

	var (
		f        [4]resonator // cascade vocal-tract resonators
		fric     resonator    // frication shaping resonator
		tilt1    onePoleLP    // glottal tilt (-6 dB/oct each)
		tilt2    onePoleLP
		phase    float64 // glottal cycle phase in [0,1)
		pitchJit float64
		ampJit   float64
		pos      int
		utterDur = float64(total) / fs
	)
	tilt1.set(800, fs)
	tilt2.set(2500, fs)

	for si, seg := range segs {
		n := seg.samples(fs)
		// Previous segment formants for transition interpolation.
		prev := seg.formants
		if si > 0 && segs[si-1].hasFormants() {
			prev = segs[si-1].formants
		}
		transition := int(0.03 * fs) // 30 ms formant glide
		if transition > n/2 {
			transition = n / 2
		}
		for i := 0; i < n; i++ {
			t := float64(pos) / fs
			if i%controlInterval == 0 {
				// Interpolate formants during the transition window.
				mix := 1.0
				if transition > 0 && i < transition {
					mix = float64(i) / float64(transition)
				}
				for k := 0; k < 4; k++ {
					fk := prev.freq[k] + mix*(seg.formants.freq[k]-prev.freq[k])
					f[k].set(fk, seg.formants.bw[k], fs)
				}
				if seg.noiseHi > seg.noiseLo {
					center := (seg.noiseLo + seg.noiseHi) / 2
					bw := seg.noiseHi - seg.noiseLo
					fric.set(center, bw, fs)
				}
				pitchJit = 1 + voice.Jitter*rng.NormFloat64()
				ampJit = 1 + voice.Shimmer*rng.NormFloat64()
			}

			// Segment amplitude envelope: 8 ms attack, 20 ms release.
			env := seg.amp * ampJit
			attack := 0.008 * fs
			release := 0.020 * fs
			if fi := float64(i); fi < attack {
				env *= fi / attack
			}
			if fi := float64(n - 1 - i); fi < release {
				env *= fi / release
			}

			var sample float64
			if seg.voiced {
				// F0 contour: declination across the utterance plus a
				// mild accentual rise early on.
				declination := 1 - 0.25*voice.PitchRange*(t/utterDur)
				accent := 1 + 0.08*voice.PitchRange*math.Sin(math.Pi*t/utterDur)
				f0 := voice.BasePitch * declination * accent * pitchJit
				phase += f0 / fs
				var pulse float64
				if phase >= 1 {
					phase -= 1
					pulse = 1
				}
				// Spectral tilt: two one-pole LPs give roughly
				// -12 dB/oct, the natural glottal source slope.
				src := tilt1.process(tilt2.process(pulse * 25))
				// Breath noise adds genuine high-band energy to voiced
				// frames (a key live-human cue per paper Fig. 3).
				src += voice.Breathiness * 0.15 * rng.NormFloat64()
				v := src
				for k := 0; k < 4; k++ {
					v = f[k].process(v)
				}
				sample = v * env
				if seg.noiseAmp > 0 {
					// Voiced frication (e.g. /z/): add shaped noise.
					sample += fric.process(rng.NormFloat64()) * env * seg.noiseAmp
				}
			} else if seg.noiseAmp > 0 {
				// Unvoiced segment: shaped noise only (fricative or
				// stop burst).
				burstEnv := 1.0
				if seg.burst {
					// Burst: silence during closure, then a sharp
					// decaying transient.
					closure := int(0.6 * float64(n))
					if i < closure {
						burstEnv = 0
					} else {
						k := float64(i-closure) / float64(n-closure)
						burstEnv = math.Exp(-6 * k)
					}
				}
				sample = fric.process(rng.NormFloat64()) * env * seg.noiseAmp * burstEnv
			}
			out.Samples[pos] = sample
			pos++
		}
	}

	// Per-voice high-band trim, then normalize.
	if voice.HighBandGain != 0 {
		applyHighShelf(out.Samples, fs, 4000, voice.HighBandGain)
	}
	out.Samples = dsp.Normalize(out.Samples)
	for i := range out.Samples {
		out.Samples[i] *= 0.9
	}
	return out
}

// segment is a resolved phoneme ready for rendering.
type segment struct {
	symbol   string
	voiced   bool
	burst    bool
	amp      float64
	dur      float64
	noiseAmp float64
	noiseLo  float64
	noiseHi  float64
	formants formantSet
}

type formantSet struct {
	freq [4]float64
	bw   [4]float64
}

func (s segment) samples(fs float64) int { return int(s.dur * fs) }

func (s segment) hasFormants() bool { return s.formants.freq[0] > 0 }

// neutralFormants is the schwa-like default used for transitions into
// segments without formant targets.
var neutralFormants = formantSet{
	freq: [4]float64{500, 1500, 2500, 3500},
	bw:   defaultBW,
}

func buildSegments(word WakeWord, voice VoiceProfile) []segment {
	segs := make([]segment, 0, len(word.Phonemes))
	for _, sym := range word.Phonemes {
		p, ok := LookupPhoneme(sym)
		if !ok {
			// Unknown symbols become short pauses rather than
			// panicking; wake-word scripts are code-reviewed data.
			p = Phoneme{Symbol: sym, Class: Silence, Duration: 0.05}
		}
		seg := segment{
			symbol: p.Symbol,
			amp:    p.Amplitude,
			dur:    p.Duration * voice.Rate,
		}
		fs := neutralFormants
		for k := 0; k < 4; k++ {
			if p.Formants[k] > 0 {
				fs.freq[k] = p.Formants[k] * voice.FormantScale
			} else {
				fs.freq[k] = neutralFormants.freq[k] * voice.FormantScale
			}
			if p.Bandwidth[k] > 0 {
				fs.bw[k] = p.Bandwidth[k]
			}
		}
		seg.formants = fs
		seg.noiseLo, seg.noiseHi = p.NoiseLo, p.NoiseHi

		switch p.Class {
		case Vowel, Glide:
			seg.voiced = true
		case Nasal:
			seg.voiced = true
		case Stop:
			seg.burst = true
			seg.noiseAmp = 1
		case VoicedStop:
			seg.voiced = true
			seg.burst = false
			seg.noiseAmp = 0.3
		case Fricative:
			seg.noiseAmp = 1
		case VoicedFricative:
			seg.voiced = true
			seg.noiseAmp = 0.6
		case Aspirate:
			seg.noiseAmp = 1
		case Silence:
			// leave amp at whatever; no source
			seg.amp = 0
		}
		segs = append(segs, seg)
	}
	return segs
}

// applyHighShelf applies a crude first-order high-shelf of the given
// gain (dB) above fc by blending the signal with a high-passed copy.
func applyHighShelf(x []float64, fs, fc, gainDB float64) {
	g := math.Pow(10, gainDB/20) - 1
	hp, err := dsp.NewButterworthHighPass(2, fc, fs)
	if err != nil {
		return
	}
	high := hp.Apply(x)
	for i := range x {
		x[i] += g * high[i]
	}
}
