package speech

import (
	"fmt"
	"math/rand/v2"
)

// VoiceProfile captures per-speaker vocal characteristics. It stands in
// for the anatomical variation across the paper's human participants:
// vocal-tract length (formant scaling), pitch, speaking rate and the
// amount of breath noise all vary from person to person, which is what
// the cross-user experiment (§IV-B14) probes.
type VoiceProfile struct {
	Name string

	// BasePitch is the speaker's average F0 in Hz (typ. 85–180 male,
	// 160–255 female).
	BasePitch float64
	// PitchRange scales the declination and prosodic movement of F0.
	PitchRange float64
	// FormantScale multiplies all formant frequencies (shorter vocal
	// tracts => higher formants; typ. 0.9–1.2).
	FormantScale float64
	// Rate multiplies phoneme durations (>1 = slower speech).
	Rate float64
	// Breathiness is the aspiration noise mixed into voiced frames
	// (0..1).
	Breathiness float64
	// Jitter and Shimmer are cycle-to-cycle pitch and amplitude
	// perturbations (fractions, typ. 0.005–0.02).
	Jitter  float64
	Shimmer float64
	// HighBandGain trims the speaker's energy above 4 kHz (dB,
	// relative). Sibilance strength varies across people.
	HighBandGain float64
}

// DefaultVoice returns a neutral adult voice used when no speaker
// variation is wanted.
func DefaultVoice() VoiceProfile {
	return VoiceProfile{
		Name:         "default",
		BasePitch:    120,
		PitchRange:   1.0,
		FormantScale: 1.0,
		Rate:         1.0,
		Breathiness:  0.08,
		Jitter:       0.01,
		Shimmer:      0.04,
		HighBandGain: 0,
	}
}

// RandomVoice draws a plausible voice from rng. Roughly half the draws
// are female-range voices (higher pitch, shorter vocal tract).
func RandomVoice(rng *rand.Rand) VoiceProfile {
	v := DefaultVoice()
	female := rng.Float64() < 0.5
	if female {
		v.BasePitch = 165 + 70*rng.Float64()
		v.FormantScale = 1.08 + 0.12*rng.Float64()
	} else {
		v.BasePitch = 90 + 60*rng.Float64()
		v.FormantScale = 0.92 + 0.12*rng.Float64()
	}
	v.PitchRange = 0.7 + 0.6*rng.Float64()
	v.Rate = 0.85 + 0.3*rng.Float64()
	v.Breathiness = 0.04 + 0.1*rng.Float64()
	v.Jitter = 0.005 + 0.015*rng.Float64()
	v.Shimmer = 0.02 + 0.05*rng.Float64()
	v.HighBandGain = -3 + 6*rng.Float64()
	if female {
		v.Name = fmt.Sprintf("voice-f-%03d", rng.IntN(1000))
	} else {
		v.Name = fmt.Sprintf("voice-m-%03d", rng.IntN(1000))
	}
	return v
}
