package speech

import (
	"math"
	"math/rand/v2"
	"testing"

	"headtalk/internal/dsp"
)

func TestLookupPhoneme(t *testing.T) {
	p, ok := LookupPhoneme("AH")
	if !ok {
		t.Fatal("AH missing from inventory")
	}
	if p.Class != Vowel || p.Formants[0] != 640 {
		t.Errorf("AH = %+v", p)
	}
	// Default bandwidths filled in.
	if p.Bandwidth[0] == 0 {
		t.Error("default bandwidths not applied")
	}
	if _, ok := LookupPhoneme("XX"); ok {
		t.Error("unknown phoneme should not resolve")
	}
}

func TestWakeWordScriptsResolve(t *testing.T) {
	for _, w := range WakeWords() {
		if len(w.Phonemes) == 0 {
			t.Errorf("%s: empty script", w.Name)
		}
		for _, sym := range w.Phonemes {
			if _, ok := LookupPhoneme(sym); !ok {
				t.Errorf("%s: unknown phoneme %q", w.Name, sym)
			}
		}
	}
}

func TestWakeWordByName(t *testing.T) {
	w, ok := WakeWordByName("Computer")
	if !ok || w.Name != "Computer" {
		t.Error("Computer not found")
	}
	if _, ok := WakeWordByName("Alexa"); ok {
		t.Error("unexpected wake word found")
	}
}

func TestSynthesizeBasicShape(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	buf := Synthesize(WordComputer, DefaultVoice(), 48000, rng)
	if buf.SampleRate != 48000 {
		t.Fatalf("sample rate %g", buf.SampleRate)
	}
	dur := buf.Duration()
	if dur < 0.3 || dur > 1.5 {
		t.Errorf("'Computer' duration %g s", dur)
	}
	if peak := dsp.MaxAbs(buf.Samples); math.Abs(peak-0.9) > 1e-9 {
		t.Errorf("peak %g, want 0.9 normalization", peak)
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	a := Synthesize(WordAmazon, DefaultVoice(), 48000, rand.New(rand.NewPCG(5, 6)))
	b := Synthesize(WordAmazon, DefaultVoice(), 48000, rand.New(rand.NewPCG(5, 6)))
	if len(a.Samples) != len(b.Samples) {
		t.Fatal("length mismatch")
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatalf("non-deterministic at sample %d", i)
		}
	}
}

func TestSynthesizeSpectralShape(t *testing.T) {
	// Paper Fig. 3a: live speech concentrates energy in 200 Hz–4 kHz
	// with genuine (but decaying) content above 4 kHz.
	rng := rand.New(rand.NewPCG(3, 4))
	buf := Synthesize(WordComputer, DefaultVoice(), 48000, rng)
	spec := dsp.HalfSpectrum(buf.Samples)
	n := len(buf.Samples)
	core := dsp.BandEnergy(spec, n, 48000, 200, 4000)
	high := dsp.BandEnergy(spec, n, 48000, 4000, 12000)
	vhigh := dsp.BandEnergy(spec, n, 48000, 16000, 23000)
	if core <= high {
		t.Errorf("core band %g should dominate high band %g", core, high)
	}
	if high <= 0 {
		t.Error("no energy above 4 kHz — fricatives/bursts missing")
	}
	if high <= vhigh*2 {
		t.Errorf("4-12 kHz (%g) should well exceed 16-23 kHz (%g)", high, vhigh)
	}
}

// estimatePitch returns the autocorrelation-based F0 estimate of the
// strongest 4096-sample window of x.
func estimatePitch(x []float64, fs float64) float64 {
	const win = 4096
	best, bestE := 0, -1.0
	for start := 0; start+win <= len(x); start += win / 2 {
		e := dsp.RMS(x[start : start+win])
		if e > bestE {
			bestE = e
			best = start
		}
	}
	seg := x[best : best+win]
	minLag := int(fs / 300)
	maxLag := int(fs / 70)
	bestLag, bestCorr := minLag, -1.0
	for lag := minLag; lag <= maxLag; lag++ {
		var corr float64
		for i := 0; i+lag < win; i++ {
			corr += seg[i] * seg[i+lag]
		}
		if corr > bestCorr {
			bestCorr = corr
			bestLag = lag
		}
	}
	return fs / float64(bestLag)
}

func TestSynthesizeVoicePitch(t *testing.T) {
	rng1 := rand.New(rand.NewPCG(7, 8))
	rng2 := rand.New(rand.NewPCG(7, 8))
	lowV := DefaultVoice()
	lowV.BasePitch = 90
	highV := DefaultVoice()
	highV.BasePitch = 220
	low := Synthesize(WordComputer, lowV, 48000, rng1)
	high := Synthesize(WordComputer, highV, 48000, rng2)
	lowF0 := estimatePitch(low.Samples, 48000)
	highF0 := estimatePitch(high.Samples, 48000)
	if lowF0 < 60 || lowF0 > 130 {
		t.Errorf("low voice F0 estimate %g, want ~90", lowF0)
	}
	if highF0 < 150 || highF0 > 280 {
		t.Errorf("high voice F0 estimate %g, want ~220", highF0)
	}
}

func TestSynthesizeUnknownPhonemeGraceful(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	w := WakeWord{Name: "weird", Phonemes: []string{"AH", "??", "IY"}}
	buf := Synthesize(w, DefaultVoice(), 48000, rng)
	if len(buf.Samples) == 0 {
		t.Fatal("synthesis failed on unknown phoneme")
	}
}

func TestRandomVoicePlausible(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	for i := 0; i < 50; i++ {
		v := RandomVoice(rng)
		if v.BasePitch < 80 || v.BasePitch > 260 {
			t.Errorf("pitch %g out of range", v.BasePitch)
		}
		if v.FormantScale < 0.85 || v.FormantScale > 1.25 {
			t.Errorf("formant scale %g out of range", v.FormantScale)
		}
		if v.Rate <= 0 {
			t.Errorf("non-positive rate %g", v.Rate)
		}
	}
}

func TestRenderMechanicalFlattensHighBand(t *testing.T) {
	// Paper Fig. 3b/c: replayed audio has less high-band energy and a
	// flatter (more uniform) distribution above 4 kHz.
	rng := rand.New(rand.NewPCG(13, 14))
	dry := Synthesize(WordComputer, DefaultVoice(), 48000, rng)
	for _, profile := range ReplayProfiles() {
		replayed := RenderMechanical(dry, profile, rng)
		n := len(dry.Samples)
		drySpec := dsp.HalfSpectrum(dry.Samples)
		repSpec := dsp.HalfSpectrum(replayed.Samples)
		dryRatio := dsp.BandEnergy(drySpec, n, 48000, 6000, 14000) / dsp.BandEnergy(drySpec, n, 48000, 500, 4000)
		repRatio := dsp.BandEnergy(repSpec, n, 48000, 6000, 14000) / dsp.BandEnergy(repSpec, n, 48000, 500, 4000)
		if repRatio >= dryRatio {
			t.Errorf("%s: high/core ratio %g not reduced from %g", profile.Name, repRatio, dryRatio)
		}
		// Band-limiting pulls the spectral rolloff down.
		dryRoll := dsp.SpectralRolloff(dry.Samples, 48000, 0.95)
		repRoll := dsp.SpectralRolloff(replayed.Samples, 48000, 0.95)
		if repRoll >= dryRoll {
			t.Errorf("%s: rolloff %g Hz not reduced from %g Hz", profile.Name, repRoll, dryRoll)
		}
	}
}

func TestRenderMechanicalNormalized(t *testing.T) {
	rng := rand.New(rand.NewPCG(15, 16))
	dry := Synthesize(WordAmazon, DefaultVoice(), 48000, rng)
	rep := RenderMechanical(dry, SonySRSX5, rng)
	if peak := dsp.MaxAbs(rep.Samples); math.Abs(peak-0.9) > 1e-9 {
		t.Errorf("peak %g, want 0.9", peak)
	}
	if rep.SampleRate != dry.SampleRate {
		t.Error("sample rate changed")
	}
}

func TestReplayProfilesDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range ReplayProfiles() {
		if seen[p.Name] {
			t.Errorf("duplicate profile %q", p.Name)
		}
		seen[p.Name] = true
		if p.HighCutoff <= p.LowCutoff {
			t.Errorf("%s: inverted band", p.Name)
		}
	}
}
