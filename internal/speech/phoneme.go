// Package speech synthesizes wake-word utterances from scratch with a
// formant (source-filter) model, and renders "replayed" versions of
// them through simulated loudspeaker chains. It substitutes for the
// human and mechanical speakers of the paper's data collection: the
// synthesizer produces broadband speech whose spectral shape matches
// the paper's Fig. 3a (energy concentrated in 200 Hz–4 kHz with an
// exponential decay above 4 kHz, plus genuine high-band energy from
// fricatives and stop bursts), while the mechanical chains flatten and
// attenuate the high band the way the Sony loudspeaker and phone
// speaker do in Fig. 3b–c.
package speech

// PhonemeClass broadly determines how a phoneme is synthesized.
type PhonemeClass int

// Phoneme classes.
const (
	Vowel PhonemeClass = iota
	Nasal
	Stop // unvoiced plosive: closure + burst
	VoicedStop
	Fricative // unvoiced frication
	VoicedFricative
	Glide
	Aspirate // /h/: noise shaped by the following vowel
	Silence
)

// Phoneme holds the synthesis targets for one speech sound. Formant
// frequencies are for an average adult male vocal tract; per-speaker
// scaling is applied by VoiceProfile.
type Phoneme struct {
	Symbol    string
	Class     PhonemeClass
	Formants  [4]float64 // F1..F4 target frequencies in Hz (0 = unused)
	Bandwidth [4]float64 // formant bandwidths in Hz
	Duration  float64    // nominal duration in seconds
	Amplitude float64    // relative level 0..1
	// Noise band for fricatives/bursts (Hz).
	NoiseLo, NoiseHi float64
}

// standard bandwidths used when a phoneme doesn't override them.
var defaultBW = [4]float64{80, 110, 160, 220}

// phonemeTable is the inventory needed for the three wake words plus a
// few extras for test material. Formant values follow the classic
// Peterson–Barney / Klatt tables.
var phonemeTable = map[string]Phoneme{
	// Vowels.
	"IY": {Symbol: "IY", Class: Vowel, Formants: [4]float64{270, 2290, 3010, 3500}, Duration: 0.12, Amplitude: 1.0},
	"IH": {Symbol: "IH", Class: Vowel, Formants: [4]float64{390, 1990, 2550, 3400}, Duration: 0.09, Amplitude: 0.95},
	"EH": {Symbol: "EH", Class: Vowel, Formants: [4]float64{530, 1840, 2480, 3380}, Duration: 0.10, Amplitude: 1.0},
	"AE": {Symbol: "AE", Class: Vowel, Formants: [4]float64{660, 1720, 2410, 3350}, Duration: 0.13, Amplitude: 1.0},
	"AH": {Symbol: "AH", Class: Vowel, Formants: [4]float64{640, 1190, 2390, 3300}, Duration: 0.09, Amplitude: 0.95},
	"AA": {Symbol: "AA", Class: Vowel, Formants: [4]float64{730, 1090, 2440, 3300}, Duration: 0.12, Amplitude: 1.0},
	"AO": {Symbol: "AO", Class: Vowel, Formants: [4]float64{570, 840, 2410, 3300}, Duration: 0.12, Amplitude: 1.0},
	"UH": {Symbol: "UH", Class: Vowel, Formants: [4]float64{440, 1020, 2240, 3240}, Duration: 0.08, Amplitude: 0.9},
	"UW": {Symbol: "UW", Class: Vowel, Formants: [4]float64{300, 870, 2240, 3200}, Duration: 0.11, Amplitude: 0.95},
	"ER": {Symbol: "ER", Class: Vowel, Formants: [4]float64{490, 1350, 1690, 3300}, Duration: 0.12, Amplitude: 0.9},
	"OW": {Symbol: "OW", Class: Vowel, Formants: [4]float64{570, 870, 2410, 3300}, Duration: 0.12, Amplitude: 1.0},
	"EY": {Symbol: "EY", Class: Vowel, Formants: [4]float64{480, 2000, 2550, 3400}, Duration: 0.13, Amplitude: 1.0},

	// Glides.
	"Y": {Symbol: "Y", Class: Glide, Formants: [4]float64{270, 2200, 3010, 3500}, Duration: 0.06, Amplitude: 0.7},
	"W": {Symbol: "W", Class: Glide, Formants: [4]float64{290, 610, 2150, 3200}, Duration: 0.06, Amplitude: 0.7},
	"L": {Symbol: "L", Class: Glide, Formants: [4]float64{360, 1300, 2700, 3300}, Duration: 0.07, Amplitude: 0.75},
	"R": {Symbol: "R", Class: Glide, Formants: [4]float64{310, 1060, 1380, 3200}, Duration: 0.07, Amplitude: 0.75},

	// Nasals: low F1, damped higher formants.
	"M": {Symbol: "M", Class: Nasal, Formants: [4]float64{250, 1000, 2200, 3200}, Bandwidth: [4]float64{100, 300, 400, 500}, Duration: 0.08, Amplitude: 0.55},
	"N": {Symbol: "N", Class: Nasal, Formants: [4]float64{250, 1450, 2300, 3200}, Bandwidth: [4]float64{100, 300, 400, 500}, Duration: 0.07, Amplitude: 0.55},

	// Unvoiced stops: closure then a broadband burst whose spectral
	// emphasis depends on the place of articulation.
	"P": {Symbol: "P", Class: Stop, Duration: 0.07, Amplitude: 0.8, NoiseLo: 400, NoiseHi: 2000},
	"T": {Symbol: "T", Class: Stop, Duration: 0.07, Amplitude: 0.9, NoiseLo: 3000, NoiseHi: 8000},
	"K": {Symbol: "K", Class: Stop, Duration: 0.08, Amplitude: 0.9, NoiseLo: 1500, NoiseHi: 4500},

	// Voiced stops.
	"B": {Symbol: "B", Class: VoicedStop, Formants: [4]float64{300, 900, 2300, 3200}, Duration: 0.06, Amplitude: 0.7, NoiseLo: 300, NoiseHi: 1500},
	"D": {Symbol: "D", Class: VoicedStop, Formants: [4]float64{300, 1700, 2600, 3300}, Duration: 0.06, Amplitude: 0.7, NoiseLo: 2500, NoiseHi: 6000},
	"G": {Symbol: "G", Class: VoicedStop, Formants: [4]float64{300, 1500, 2200, 3200}, Duration: 0.06, Amplitude: 0.7, NoiseLo: 1200, NoiseHi: 3500},

	// Fricatives.
	"S":  {Symbol: "S", Class: Fricative, Duration: 0.11, Amplitude: 0.65, NoiseLo: 4000, NoiseHi: 10000},
	"SH": {Symbol: "SH", Class: Fricative, Duration: 0.11, Amplitude: 0.7, NoiseLo: 2000, NoiseHi: 6500},
	"F":  {Symbol: "F", Class: Fricative, Duration: 0.09, Amplitude: 0.4, NoiseLo: 1500, NoiseHi: 9000},
	"TH": {Symbol: "TH", Class: Fricative, Duration: 0.08, Amplitude: 0.35, NoiseLo: 1500, NoiseHi: 9000},
	"Z":  {Symbol: "Z", Class: VoicedFricative, Formants: [4]float64{250, 1400, 2400, 3300}, Duration: 0.09, Amplitude: 0.6, NoiseLo: 4000, NoiseHi: 9000},
	"V":  {Symbol: "V", Class: VoicedFricative, Formants: [4]float64{250, 1100, 2300, 3200}, Duration: 0.07, Amplitude: 0.5, NoiseLo: 1500, NoiseHi: 7000},

	// Aspirate.
	"HH": {Symbol: "HH", Class: Aspirate, Duration: 0.07, Amplitude: 0.45, NoiseLo: 400, NoiseHi: 5500},

	// Inter-word pause.
	"SIL": {Symbol: "SIL", Class: Silence, Duration: 0.08},
}

// LookupPhoneme returns the inventory entry for an ARPABET-like symbol
// and whether it exists.
func LookupPhoneme(symbol string) (Phoneme, bool) {
	p, ok := phonemeTable[symbol]
	if !ok {
		return Phoneme{}, false
	}
	if p.Bandwidth == ([4]float64{}) {
		p.Bandwidth = defaultBW
	}
	return p, true
}

// WakeWord is a scripted utterance: a name plus its phoneme sequence.
type WakeWord struct {
	Name     string
	Phonemes []string
}

// The paper's three wake words (§IV, "Data Collection Process").
var (
	WordComputer     = WakeWord{Name: "Computer", Phonemes: []string{"K", "AH", "M", "P", "Y", "UW", "T", "ER"}}
	WordAmazon       = WakeWord{Name: "Amazon", Phonemes: []string{"AE", "M", "AH", "Z", "AA", "N"}}
	WordHeyAssistant = WakeWord{Name: "Hey Assistant", Phonemes: []string{"HH", "EY", "SIL", "AH", "S", "IH", "S", "T", "AH", "N", "T"}}
)

// WakeWords returns the paper's three wake words in evaluation order.
func WakeWords() []WakeWord {
	return []WakeWord{WordHeyAssistant, WordComputer, WordAmazon}
}

// WakeWordByName returns the wake word with the given name and whether
// it exists.
func WakeWordByName(name string) (WakeWord, bool) {
	for _, w := range WakeWords() {
		if w.Name == name {
			return w, true
		}
	}
	return WakeWord{}, false
}
