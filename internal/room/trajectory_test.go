package room

import (
	"math"
	"testing"

	"headtalk/internal/dsp"
	"headtalk/internal/geom"
)

// TestAppendFractionalTap pins the delay-splitting semantics: negative
// delays clamp to sample zero with full gain (never a Delay of -1 that
// ConvolveSparse would drop), exact-integer delays emit a single
// full-gain tap, and sub-sample delays split across the two bracketing
// integers with linear weights.
func TestAppendFractionalTap(t *testing.T) {
	cases := []struct {
		name  string
		delay float64
		gain  float64
		want  []dsp.SparseTap
	}{
		{"negative", -1.5, 2.0, []dsp.SparseTap{{Delay: 0, Gain: 2.0}}},
		{"negative sub-sample", -0.25, 1.0, []dsp.SparseTap{{Delay: 0, Gain: 1.0}}},
		{"zero", 0, 3.0, []dsp.SparseTap{{Delay: 0, Gain: 3.0}}},
		{"exact integer", 7, 1.5, []dsp.SparseTap{{Delay: 7, Gain: 1.5}}},
		{"sub-sample", 3.25, 1.0, []dsp.SparseTap{{Delay: 3, Gain: 0.75}, {Delay: 4, Gain: 0.25}}},
		{"below one", 0.5, 2.0, []dsp.SparseTap{{Delay: 0, Gain: 1.0}, {Delay: 1, Gain: 1.0}}},
		{"zero gain", 4.5, 0, nil},
	}
	for _, c := range cases {
		got := appendFractionalTap(nil, c.delay, c.gain)
		if len(got) != len(c.want) {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
			continue
		}
		for i := range got {
			if got[i].Delay != c.want[i].Delay || math.Abs(got[i].Gain-c.want[i].Gain) > 1e-12 {
				t.Errorf("%s: tap %d = %+v, want %+v", c.name, i, got[i], c.want[i])
			}
			if got[i].Delay < 0 {
				t.Errorf("%s: emitted negative delay %d", c.name, got[i].Delay)
			}
		}
	}
	// Weight conservation: the split taps of any non-negative delay sum
	// to the original gain.
	for _, d := range []float64{0, 0.1, 1, 2.5, 10.999} {
		var sum float64
		for _, tap := range appendFractionalTap(nil, d, 1.0) {
			sum += tap.Gain
		}
		if math.Abs(sum-1.0) > 1e-12 {
			t.Errorf("delay %g: tap gains sum to %g, want 1", d, sum)
		}
	}
}

func TestTrajectoryInterpolation(t *testing.T) {
	tr := Trajectory{Waypoints: []Source{
		{Pos: geom.Vec3{X: 0, Y: 0, Z: 1}, Azimuth: 350},
		{Pos: geom.Vec3{X: 2, Y: 0, Z: 1}, Azimuth: 10},
		{Pos: geom.Vec3{X: 2, Y: 4, Z: 1}, Azimuth: 90},
	}}
	if got := tr.At(0); got.Pos.X != 0 || got.Azimuth != 350 {
		t.Errorf("t=0: %+v", got)
	}
	if got := tr.At(1); got.Pos.Y != 4 || got.Azimuth != 90 {
		t.Errorf("t=1: %+v", got)
	}
	// Midpoint of the first segment: the 350→10 turn goes the short way
	// through 0, so t=0.25 (middle of segment 0) reads 350+10=360≡0.
	mid := tr.At(0.25)
	if math.Abs(mid.Pos.X-1) > 1e-12 {
		t.Errorf("t=0.25 pos: %+v", mid.Pos)
	}
	if a := geom.NormalizeDeg(mid.Azimuth); math.Abs(a) > 1e-9 {
		t.Errorf("t=0.25 azimuth %g, want ~0 (short-arc turn)", a)
	}
	// Clamping outside [0,1].
	if got := tr.At(-1); got.Azimuth != 350 {
		t.Errorf("t<0: %+v", got)
	}
	if got := tr.At(2); got.Azimuth != 90 {
		t.Errorf("t>1: %+v", got)
	}
}

func TestTrajectoryStationary(t *testing.T) {
	p := geom.Vec3{X: 1, Y: 2, Z: 1.6}
	if !(Trajectory{}).Stationary() {
		t.Error("empty trajectory should be stationary")
	}
	same := Trajectory{Waypoints: []Source{{Pos: p, Azimuth: 30}, {Pos: p, Azimuth: 30}, {Pos: p, Azimuth: 390}}}
	if !same.Stationary() {
		t.Error("identical waypoints (mod 360°) should be stationary")
	}
	moved := Trajectory{Waypoints: []Source{{Pos: p, Azimuth: 30}, {Pos: p.Add(geom.Vec3{X: 0.1}), Azimuth: 30}}}
	if moved.Stationary() {
		t.Error("moved waypoint should not be stationary")
	}
	turned := Trajectory{Waypoints: []Source{{Pos: p, Azimuth: 30}, {Pos: p, Azimuth: 31}}}
	if turned.Stationary() {
		t.Error("turned waypoint should not be stationary")
	}
}
