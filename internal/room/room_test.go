package room

import (
	"math"
	"math/rand/v2"
	"testing"

	"headtalk/internal/dsp"
	"headtalk/internal/geom"
)

func TestMaterialAbsorptionInterpolation(t *testing.T) {
	m := Material{Freqs: []float64{100, 1000}, Alphas: []float64{0.1, 0.5}}
	if got := m.Absorption(50); got != 0.1 {
		t.Errorf("below range: %g", got)
	}
	if got := m.Absorption(5000); got != 0.5 {
		t.Errorf("above range: %g", got)
	}
	if got := m.Absorption(550); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("midpoint: %g, want 0.3", got)
	}
	empty := Material{}
	if got := empty.Absorption(1000); got != 0.1 {
		t.Errorf("empty material default: %g", got)
	}
}

func TestRoomGeometry(t *testing.T) {
	r := Room{Dims: geom.Vec3{X: 2, Y: 3, Z: 4}}
	if r.Volume() != 24 {
		t.Errorf("volume %g", r.Volume())
	}
	if r.SurfaceArea() != 2*(6+8+12) {
		t.Errorf("surface %g", r.SurfaceArea())
	}
	if r.C() != 340 {
		t.Errorf("default speed of sound %g", r.C())
	}
	r.SpeedOfSound = 343
	if r.C() != 343 {
		t.Error("speed override ignored")
	}
}

func TestEyringT60Plausible(t *testing.T) {
	lab := LabRoom()
	home := HomeRoom()
	for _, f := range []float64{250, 1000, 4000} {
		tl := lab.EyringT60(f)
		th := home.EyringT60(f)
		if tl < 0.05 || tl > 1.5 {
			t.Errorf("lab T60(%g) = %g s implausible", f, tl)
		}
		if th < 0.05 || th > 1.5 {
			t.Errorf("home T60(%g) = %g s implausible", f, th)
		}
	}
}

func TestEyringMoreAbsorptionShorterT60(t *testing.T) {
	dead := Room{Dims: geom.Vec3{X: 5, Y: 4, Z: 3}}
	live := dead
	for i := range dead.Walls {
		dead.Walls[i] = Material{Freqs: []float64{1000}, Alphas: []float64{0.6}}
		live.Walls[i] = Material{Freqs: []float64{1000}, Alphas: []float64{0.05}}
	}
	if dead.EyringT60(1000) >= live.EyringT60(1000) {
		t.Error("more absorption should shorten T60")
	}
}

func TestAxisImagesOrderZero(t *testing.T) {
	imgs := axisImages(1.5, 5, 0)
	if len(imgs) != 1 || imgs[0].coord != 1.5 || imgs[0].refl != 0 {
		t.Fatalf("order-0 axis images = %+v", imgs)
	}
}

func TestAxisImagesOrderOne(t *testing.T) {
	imgs := axisImages(1.5, 5, 1)
	// Direct (1.5), mirror at wall 0 (-1.5), mirror at wall L (8.5).
	coords := map[float64]int{}
	for _, im := range imgs {
		coords[im.coord] = im.refl
	}
	if len(imgs) != 3 {
		t.Fatalf("order-1: %d images, want 3: %+v", len(imgs), imgs)
	}
	if coords[1.5] != 0 || coords[-1.5] != 1 || coords[8.5] != 1 {
		t.Errorf("order-1 images wrong: %+v", coords)
	}
}

func TestAxisImagesWallHitCounts(t *testing.T) {
	for _, im := range axisImages(1.0, 4, 3) {
		if im.hits0+im.hits1 != im.refl {
			t.Errorf("image %+v: hits don't sum to reflections", im)
		}
		if im.hits0 < 0 || im.hits1 < 0 {
			t.Errorf("image %+v: negative hit count", im)
		}
	}
}

func TestBandRIRDirectPath(t *testing.T) {
	r := LabRoom()
	sim := NewSimulator(r)
	sim.TailTaps = -1 // isolate early reflections
	src := Source{Pos: geom.Vec3{X: 3, Y: 2, Z: 1.5}, Azimuth: 180}
	micPos := geom.Vec3{X: 1, Y: 2, Z: 1.5}
	rng := rand.New(rand.NewPCG(1, 1))
	taps, stats := sim.BandRIR(src, micPos, rng)
	if len(taps) != len(sim.Bands) {
		t.Fatalf("%d band tap lists, want %d", len(taps), len(sim.Bands))
	}
	wantDelay := 2.0 / r.C()
	if math.Abs(stats.DirectDelay-wantDelay) > 1e-9 {
		t.Errorf("direct delay %g, want %g", stats.DirectDelay, wantDelay)
	}
	// 1/d amplitude law on the direct path (on-axis): gain ~ 0.5.
	if math.Abs(stats.DirectGain-0.5) > 0.05 {
		t.Errorf("direct gain %g, want ~0.5 at 2 m", stats.DirectGain)
	}
	// Order-1 room: direct + 6 wall images.
	if stats.EarlyCount != 7 {
		t.Errorf("early path count %d, want 7", stats.EarlyCount)
	}
}

func TestBandRIRDirectivityReducesOffAxisGain(t *testing.T) {
	r := LabRoom()
	sim := NewSimulator(r)
	sim.TailTaps = -1
	micPos := geom.Vec3{X: 1, Y: 2, Z: 1.5}
	rng := rand.New(rand.NewPCG(1, 1))
	facing := Source{Pos: geom.Vec3{X: 3, Y: 2, Z: 1.5}, Azimuth: 180} // toward mic
	away := facing
	away.Azimuth = 0
	_, statsFacing := sim.BandRIR(facing, micPos, rng)
	_, statsAway := sim.BandRIR(away, micPos, rng)
	// Band 0 is 100-500 Hz, nearly omni — gains close.
	if statsAway.DirectGain < statsFacing.DirectGain*0.7 {
		t.Errorf("low band should be near-omni: %g vs %g", statsAway.DirectGain, statsFacing.DirectGain)
	}
}

func TestBandRIRHighBandRearAttenuation(t *testing.T) {
	// Compare total high-band early energy facing vs away.
	r := LabRoom()
	sim := NewSimulator(r)
	sim.TailTaps = -1
	micPos := geom.Vec3{X: 1, Y: 2, Z: 1.2}
	rng := rand.New(rand.NewPCG(1, 1))
	energy := func(azimuth float64) float64 {
		src := Source{Pos: geom.Vec3{X: 4, Y: 2, Z: 1.5}, Azimuth: azimuth}
		taps, _ := sim.BandRIR(src, micPos, rng)
		hiBand := taps[len(taps)-1]
		var acc float64
		for _, tp := range hiBand {
			acc += tp.Gain * tp.Gain
		}
		return acc
	}
	toMic := 180.0
	facing := energy(toMic)
	away := energy(toMic + 180)
	if away >= facing/2 {
		t.Errorf("high-band early energy should drop strongly behind the head: facing=%g away=%g", facing, away)
	}
}

func TestBandRIRTailEnergy(t *testing.T) {
	r := LabRoom()
	sim := NewSimulator(r)
	sim.ImageOrder = 0
	sim.TailTaps = 64
	src := Source{Pos: geom.Vec3{X: 3, Y: 2, Z: 1.5}, Azimuth: 0, Dir: OmniDirectivity{}}
	micPos := geom.Vec3{X: 1, Y: 2, Z: 1.5}
	rng := rand.New(rand.NewPCG(2, 2))
	taps, stats := sim.BandRIR(src, micPos, rng)
	// Tail tap energy should match the configured diffuse level.
	var tail float64
	direct := stats.DirectGain
	for _, tp := range taps[0] {
		tail += tp.Gain * tp.Gain
	}
	tail -= direct * direct // subtract the (amplitude-level) direct contribution
	// Fractional-delay taps split amplitude-preservingly, which loses
	// energy for incoherent content (expected factor ~2/3), so accept
	// the configured level within a generous band while still catching
	// order-of-magnitude errors.
	if tail < 0.25*stats.TailEnergyOne || tail > 1.2*stats.TailEnergyOne {
		t.Errorf("tail energy %g outside [0.25, 1.2]x of configured %g", tail, stats.TailEnergyOne)
	}
}

func TestTailScaleAblation(t *testing.T) {
	r := LabRoom()
	simA := NewSimulator(r)
	simA.ImageOrder = 0
	simB := NewSimulator(r)
	simB.ImageOrder = 0
	simB.TailScale = 1.0
	src := Source{Pos: geom.Vec3{X: 3, Y: 2, Z: 1.5}, Dir: OmniDirectivity{}}
	micPos := geom.Vec3{X: 1, Y: 2, Z: 1.5}
	_, a := simA.BandRIR(src, micPos, rand.New(rand.NewPCG(1, 1)))
	_, b := simB.BandRIR(src, micPos, rand.New(rand.NewPCG(1, 1)))
	if ratio := b.TailEnergyOne / a.TailEnergyOne; math.Abs(ratio-1/0.3) > 0.01 {
		t.Errorf("TailScale ratio %g, want %g", ratio, 1/0.3)
	}
}

func TestObstructionAttenuatesDirect(t *testing.T) {
	r := LabRoom()
	clear := NewSimulator(r)
	clear.TailTaps = -1
	blocked := NewSimulator(r)
	blocked.TailTaps = -1
	blocked.Obstruction = FullBlock
	src := Source{Pos: geom.Vec3{X: 3, Y: 2, Z: 1.5}, Azimuth: 180}
	micPos := geom.Vec3{X: 1, Y: 2, Z: 1.5}
	rng := rand.New(rand.NewPCG(1, 1))
	_, cs := clear.BandRIR(src, micPos, rng)
	_, bs := blocked.BandRIR(src, micPos, rng)
	lossDB := 20 * math.Log10(cs.DirectGain/bs.DirectGain)
	want := FullBlock.LossDB(DefaultBands()[0].Center())
	if math.Abs(lossDB-want) > 0.5 {
		t.Errorf("direct loss %g dB, want %g", lossDB, want)
	}
}

func TestObstructionLossInterpolation(t *testing.T) {
	o := &Obstruction{LossDB200: 2, LossDB8k: 10}
	if o.LossDB(100) != 2 || o.LossDB(20000) != 10 {
		t.Error("endpoints wrong")
	}
	mid := o.LossDB(1265) // ~geometric midpoint of 200..8000
	if mid < 5 || mid > 7 {
		t.Errorf("midpoint loss %g, want ~6", mid)
	}
}

func TestMaxDelaySamplesBoundsActualTaps(t *testing.T) {
	r := HomeRoom()
	sim := NewSimulator(r)
	src := Source{Pos: geom.Vec3{X: 9, Y: 2.5, Z: 1.6}, Azimuth: 180}
	micPos := geom.Vec3{X: 0.5, Y: 1.5, Z: 0.83}
	rng := rand.New(rand.NewPCG(3, 3))
	taps, _ := sim.BandRIR(src, micPos, rng)
	limit := sim.MaxDelaySamples()
	for bi, band := range taps {
		for _, tp := range band {
			if tp.Delay > limit {
				t.Fatalf("band %d tap delay %d exceeds bound %d", bi, tp.Delay, limit)
			}
		}
	}
}

func TestSplitBandsReconstruction(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	n := 4096
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	// Band-limit the reference to the union of the bands so perfect
	// reconstruction is possible.
	bands := DefaultBands()
	split := SplitBands(x, 48000, bands)
	if len(split) != len(bands) {
		t.Fatalf("%d bands out, want %d", len(split), len(bands))
	}
	sum := make([]float64, n)
	for _, b := range split {
		if len(b) != n {
			t.Fatalf("band length %d, want %d", len(b), n)
		}
		for i := range b {
			sum[i] += b[i]
		}
	}
	// The sum must match x within the covered band: compare energy of
	// (x - sum) against x inside 150 Hz–15 kHz.
	diff := make([]float64, n)
	for i := range diff {
		diff[i] = x[i] - sum[i]
	}
	xIn := dsp.BandEnergy(dsp.HalfSpectrum(x), n, 48000, 150, 15000)
	dIn := dsp.BandEnergy(dsp.HalfSpectrum(diff), n, 48000, 150, 15000)
	if dIn > 0.05*xIn {
		t.Errorf("in-band reconstruction error %g vs signal %g", dIn, xIn)
	}
}

func TestSplitBandsIsolation(t *testing.T) {
	// A 300 Hz tone should land in band 0 only.
	const fs = 48000.0
	n := 8192
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * 300 * float64(i) / fs)
	}
	split := SplitBands(x, fs, DefaultBands())
	e0 := dsp.RMS(split[0])
	for bi := 1; bi < len(split); bi++ {
		if e := dsp.RMS(split[bi]); e > 0.1*e0 {
			t.Errorf("band %d leaked energy %g (band 0 has %g)", bi, e, e0)
		}
	}
}

func TestDirectivityProperties(t *testing.T) {
	h := HumanDirectivity{}
	// On-axis gain is 1 at all frequencies.
	for _, f := range []float64{100, 1000, 8000} {
		if g := h.Gain(f, 0); math.Abs(g-1) > 1e-9 {
			t.Errorf("on-axis gain at %g Hz = %g", f, g)
		}
	}
	// Low frequencies are near-omni.
	if g := h.Gain(100, 180); g < 0.95 {
		t.Errorf("100 Hz rear gain %g, want ~1", g)
	}
	// High frequencies are strongly front-weighted and monotone in
	// angle.
	prev := 2.0
	for _, a := range []float64{0, 45, 90, 135, 180} {
		g := h.Gain(8000, a)
		if g >= prev {
			t.Errorf("8 kHz gain not monotone at %g°: %g >= %g", a, g, prev)
		}
		prev = g
	}
	if g := h.Gain(8000, 180); g > 0.25 {
		t.Errorf("8 kHz rear gain %g, want strong shadowing", g)
	}
}

func TestLoudspeakerMoreDirectionalThanHumanMid(t *testing.T) {
	h := HumanDirectivity{}
	l := LoudspeakerDirectivity{}
	if l.Gain(2000, 180) >= h.Gain(2000, 180) {
		t.Error("loudspeaker should shadow more at mid frequencies")
	}
}

func TestDirectivityFactor(t *testing.T) {
	if q := DirectivityFactor(OmniDirectivity{}, 1000); math.Abs(q-1) > 0.01 {
		t.Errorf("omni Q = %g, want 1", q)
	}
	qLow := DirectivityFactor(HumanDirectivity{}, 100)
	qHigh := DirectivityFactor(HumanDirectivity{}, 8000)
	if qLow > 1.2 {
		t.Errorf("low-band Q = %g, want ~1", qLow)
	}
	if qHigh <= qLow || qHigh < 1.5 {
		t.Errorf("high-band Q = %g, want clearly > low-band %g", qHigh, qLow)
	}
}

func TestBandCenters(t *testing.T) {
	b := Band{Lo: 100, Hi: 400}
	if got := b.Center(); math.Abs(got-200) > 1e-9 {
		t.Errorf("geometric center %g, want 200", got)
	}
	bands := DefaultBands()
	for i := 1; i < len(bands); i++ {
		if bands[i].Lo != bands[i-1].Hi {
			t.Errorf("bands %d and %d not contiguous", i-1, i)
		}
	}
}
