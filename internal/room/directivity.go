package room

import (
	"math"

	"headtalk/internal/geom"
)

func sqrtf(x float64) float64 { return math.Sqrt(x) }
func cosf(x float64) float64  { return math.Cos(x) }
func sinf(x float64) float64  { return math.Sin(x) }

// Directivity models the angular radiation pattern of a sound source
// as a function of frequency. Gain returns the amplitude factor (<= 1,
// with 1 on-axis) for a path leaving the source at offAxisDeg degrees
// from its facing direction, in the band centered at freq Hz.
type Directivity interface {
	Gain(freq, offAxisDeg float64) float64
}

// HumanDirectivity models human speech radiation after Monson et
// al. [51]: low frequencies radiate nearly omnidirectionally while high
// frequencies are strongly beamed forward by the mouth/head geometry
// (roughly -18 dB behind the head at 8 kHz, only ~-2 dB at 250 Hz).
type HumanDirectivity struct {
	// LowFreq and HighFreq bound the transition from omnidirectional
	// to fully directional radiation. Zero values select the standard
	// 400 Hz / 12 kHz transition.
	LowFreq, HighFreq float64
}

var _ Directivity = HumanDirectivity{}

// Gain implements Directivity.
func (d HumanDirectivity) Gain(freq, offAxisDeg float64) float64 {
	lo, hi := d.LowFreq, d.HighFreq
	if lo == 0 {
		lo = 250
	}
	if hi == 0 {
		hi = 10000
	}
	w := directionalityWeight(freq, lo, hi)
	theta := geom.Deg2Rad(offAxisDeg)
	// Cardioid-family pattern with a residual floor: heads diffract,
	// they don't null. The exponent sets the rear attenuation (~-21 dB
	// at 180°, ~-7 dB at 90° in the fully directional limit), matching
	// the high-band front/back differences Monson et al. report.
	card := 0.6 + 0.4*math.Cos(theta)
	pattern := math.Pow(card, 1.5)
	return 1 - w*(1-pattern)
}

// LoudspeakerDirectivity models a piston driver in a box: broadly
// similar to the human pattern but with a stronger rear null, an
// earlier transition and extra beaming at the top of the range. The
// contrast between this pattern and the human one is one of the cues
// the replayed-audio experiments exercise.
type LoudspeakerDirectivity struct{}

var _ Directivity = LoudspeakerDirectivity{}

// Gain implements Directivity.
func (LoudspeakerDirectivity) Gain(freq, offAxisDeg float64) float64 {
	w := directionalityWeight(freq, 250, 8000)
	theta := geom.Deg2Rad(offAxisDeg)
	card := 0.5 + 0.5*math.Cos(theta)
	pattern := 0.05 + 0.95*math.Pow(card, 2)
	return 1 - w*(1-pattern)
}

// OmniDirectivity radiates uniformly; used for ambient noise sources
// and as an ablation baseline.
type OmniDirectivity struct{}

var _ Directivity = OmniDirectivity{}

// Gain implements Directivity.
func (OmniDirectivity) Gain(float64, float64) float64 { return 1 }

// directionalityWeight maps frequency to [0, 1]: 0 below lo (omni),
// 1 above hi (fully patterned), log-linear in between.
func directionalityWeight(freq, lo, hi float64) float64 {
	if freq <= lo {
		return 0
	}
	if freq >= hi {
		return 1
	}
	return math.Log(freq/lo) / math.Log(hi/lo)
}

// DirectivityFactor returns the energy directivity factor Q of the
// pattern in the band centered at freq: the ratio of on-axis intensity
// to the spherical average. It is used to scale the diffuse tail (an
// omnidirectional room integrates the source's total radiated power,
// not its on-axis power). Computed by numeric integration over the
// sphere assuming an axisymmetric pattern.
func DirectivityFactor(d Directivity, freq float64) float64 {
	const steps = 90
	var integral float64
	for i := 0; i < steps; i++ {
		theta := (float64(i) + 0.5) * math.Pi / steps
		g := d.Gain(freq, geom.Rad2Deg(theta))
		integral += g * g * math.Sin(theta) * (math.Pi / steps)
	}
	// Mean of g^2 over the sphere = integral/2; Q = g_axis^2 / mean.
	mean := integral / 2
	if mean <= 0 {
		return 1
	}
	axis := d.Gain(freq, 0)
	return axis * axis / mean
}
