package room

import (
	"math"
	"math/rand/v2"

	"headtalk/internal/dsp"
	"headtalk/internal/geom"
)

// Wall indices into Room.Walls.
const (
	WallX0  = iota // x = 0
	WallX1         // x = Dims.X
	WallY0         // y = 0
	WallY1         // y = Dims.Y
	Floor          // z = 0
	Ceiling        // z = Dims.Z
)

// Room is a rectangular ("shoebox") room with per-wall materials.
type Room struct {
	Name  string
	Dims  geom.Vec3 // interior dimensions in meters
	Walls [6]Material
	// SpeedOfSound in m/s; zero selects the paper's 340 m/s.
	SpeedOfSound float64
}

// C returns the configured speed of sound.
func (r *Room) C() float64 {
	if r.SpeedOfSound == 0 {
		return 340
	}
	return r.SpeedOfSound
}

// Volume returns the room volume in cubic meters.
func (r *Room) Volume() float64 { return r.Dims.X * r.Dims.Y * r.Dims.Z }

// SurfaceArea returns the total interior surface area in square meters.
func (r *Room) SurfaceArea() float64 {
	d := r.Dims
	return 2 * (d.X*d.Y + d.X*d.Z + d.Y*d.Z)
}

// wallArea returns the area of wall w.
func (r *Room) wallArea(w int) float64 {
	d := r.Dims
	switch w {
	case WallX0, WallX1:
		return d.Y * d.Z
	case WallY0, WallY1:
		return d.X * d.Z
	default:
		return d.X * d.Y
	}
}

// MeanAbsorption returns the surface-weighted mean energy absorption
// coefficient at freq Hz.
func (r *Room) MeanAbsorption(freq float64) float64 {
	var num, den float64
	for w := 0; w < 6; w++ {
		a := r.wallArea(w)
		num += a * r.Walls[w].Absorption(freq)
		den += a
	}
	if den == 0 {
		return 0.1
	}
	return num / den
}

// EyringT60 returns the Eyring reverberation time in seconds at freq
// Hz: T = 0.161 V / (-S ln(1 - alpha)) (paper §III-B2).
func (r *Room) EyringT60(freq float64) float64 {
	alpha := r.MeanAbsorption(freq)
	if alpha >= 0.999 {
		alpha = 0.999
	}
	denom := -r.SurfaceArea() * math.Log(1-alpha)
	if denom <= 0 {
		return 0.01
	}
	return 0.161 * r.Volume() / denom
}

// LabRoom models the paper's 280 sq ft office (20'x14', ten-foot
// dropped ceiling): drywall walls, carpet floor, acoustic ceiling tile.
func LabRoom() Room {
	return Room{
		Name: "lab",
		Dims: geom.Vec3{X: 6.10, Y: 4.27, Z: 3.05},
		Walls: [6]Material{
			Drywall, Drywall, Drywall, Drywall,
			Carpet, AcousticCeiling,
		},
	}
}

// HomeRoom models the paper's apartment living room (33'x10'x8') with
// mixed furnishings, a window wall and hard flooring.
func HomeRoom() Room {
	return Room{
		Name: "home",
		Dims: geom.Vec3{X: 10.06, Y: 3.05, Z: 2.44},
		Walls: [6]Material{
			Furnished, WindowGlass, Drywall, Furnished,
			HardFloor, Drywall,
		},
	}
}

// Source is an oriented sound emitter: a human mouth or a loudspeaker
// driver.
type Source struct {
	Pos     geom.Vec3
	Azimuth float64 // facing direction in degrees (counterclockwise from +X)
	Dir     Directivity
}

// directivity returns the source's pattern, defaulting to human.
func (s Source) directivity() Directivity {
	if s.Dir == nil {
		return HumanDirectivity{}
	}
	return s.Dir
}

// Obstruction models objects placed around the device (§IV-B13): they
// attenuate the direct path, more strongly at high frequencies, which
// makes facing speech resemble non-facing speech.
type Obstruction struct {
	Name string
	// LossDB200 and LossDB8k anchor a log-frequency interpolated
	// direct-path insertion loss.
	LossDB200, LossDB8k float64
}

// LossDB returns the direct-path insertion loss in dB at freq Hz.
func (o *Obstruction) LossDB(freq float64) float64 {
	if freq <= 200 {
		return o.LossDB200
	}
	if freq >= 8000 {
		return o.LossDB8k
	}
	t := math.Log(freq/200) / math.Log(8000.0/200)
	return o.LossDB200 + t*(o.LossDB8k-o.LossDB200)
}

// Obstruction presets matching the paper's three surrounding-object
// settings (Fig. 17).
var (
	// PartialBlock: books beside the device — a modest, mostly
	// high-frequency shadow (paper: accuracy barely drops, 95.83%).
	PartialBlock = &Obstruction{Name: "partially blocked", LossDB200: 0.5, LossDB8k: 4}
	// FullBlock: an enclosure around the device — the direct path is
	// heavily attenuated and reverberation dominates, which is what
	// makes facing speech look like backward speech (paper: 70%).
	FullBlock = &Obstruction{Name: "fully blocked", LossDB200: 10, LossDB8k: 24}
)

// Simulator turns (source, microphone) geometry into band-wise sparse
// room impulse responses: image-source early reflections plus a
// velvet-noise diffuse tail whose energy follows the classic
// reverberant-field level 16*pi/(Q*A).
type Simulator struct {
	Room  Room
	Bands []Band
	// SampleRate of the rendered RIR taps (default 48 kHz).
	SampleRate float64
	// ImageOrder caps the total reflection count of image sources
	// (default 1; 2+ for the fidelity ablation).
	ImageOrder int
	// TailTaps is the number of velvet-noise taps per band (default
	// 80; negative disables the diffuse tail entirely).
	TailTaps int
	// MaxTail caps the diffuse tail length in seconds (default 0.35).
	MaxTail float64
	// TailScale multiplies the ideal-diffuse tail energy 16*pi/(Q*A).
	// The Sabine/Eyring budget assumes bare walls and a perfectly
	// diffuse field; furnished rooms scatter and absorb substantially
	// more, and much of the remaining reverberant energy arrives as
	// discrete early reflections (modeled separately by the image
	// sources). The default 0.3 calibrates the direct-to-reverberant
	// contrast to the behaviour the paper reports (orientation cues
	// survive out to 5 m). Zero selects the default; set to 1 for the
	// ideal-diffuse ablation.
	TailScale float64
	// Obstruction, when set, attenuates the direct path.
	Obstruction *Obstruction
}

// NewSimulator returns a simulator for the room with default fidelity
// settings tuned for single-core dataset generation.
func NewSimulator(r Room) *Simulator {
	return &Simulator{
		Room:       r,
		Bands:      DefaultBands(),
		SampleRate: 48000,
		ImageOrder: 1,
		TailTaps:   80,
		MaxTail:    0.35,
	}
}

// axisImage is one mirrored receiver coordinate along a single axis.
type axisImage struct {
	coord float64
	refl  int // total reflections along this axis
	hits0 int // hits on the wall at coordinate 0
	hits1 int // hits on the wall at coordinate L
}

// axisImages enumerates receiver images along one axis up to maxRefl
// reflections.
func axisImages(r, length float64, maxRefl int) []axisImage {
	var out []axisImage
	maxN := maxRefl/2 + 1
	for n := -maxN; n <= maxN; n++ {
		// Even parity: coord = 2nL + r, |2n| reflections, |n| on each wall.
		if refl := 2 * abs(n); refl <= maxRefl {
			out = append(out, axisImage{coord: 2*float64(n)*length + r, refl: refl, hits0: abs(n), hits1: abs(n)})
		}
		// Odd parity: coord = 2nL - r.
		refl := abs(2*n - 1)
		if refl <= maxRefl {
			var h0, h1 int
			if n > 0 {
				h1 = n
				h0 = n - 1
			} else {
				h0 = -n + 1
				h1 = -n
			}
			out = append(out, axisImage{coord: 2*float64(n)*length - r, refl: refl, hits0: h0, hits1: h1})
		}
	}
	return out
}

func abs(n int) int {
	if n < 0 {
		return -n
	}
	return n
}

// RIRStats summarizes a generated band RIR for diagnostics and tests.
type RIRStats struct {
	DirectDelay   float64 // seconds
	DirectGain    float64 // amplitude of the direct path (band 0)
	EarlyCount    int     // image-source paths rendered
	TailEnergyOne float64 // tail energy of band 0
}

// BandRIR computes the per-band sparse impulse response from src to a
// microphone at micPos. rng seeds the diffuse tail (pass a per-capture,
// per-mic RNG so tails decorrelate across microphones). The returned
// stats describe the geometry for testing.
func (s *Simulator) BandRIR(src Source, micPos geom.Vec3, rng *rand.Rand) ([][]dsp.SparseTap, RIRStats) {
	fs := s.sampleRate()
	c := s.Room.C()
	order := s.ImageOrder
	if order < 0 {
		order = 0
	}
	dir := src.directivity()
	facing := geom.HeadingVec(src.Azimuth)

	xs := axisImages(micPos.X, s.Room.Dims.X, order)
	ys := axisImages(micPos.Y, s.Room.Dims.Y, order)
	zs := axisImages(micPos.Z, s.Room.Dims.Z, order)

	taps := make([][]dsp.SparseTap, len(s.Bands))
	var stats RIRStats

	// Per-band, per-axis amplitude reflection coefficients.
	type wallBeta struct{ b0, b1 float64 }
	beta := make([][3]wallBeta, len(s.Bands))
	for bi, band := range s.Bands {
		f := band.Center()
		beta[bi] = [3]wallBeta{
			{refl(s.Room.Walls[WallX0], f), refl(s.Room.Walls[WallX1], f)},
			{refl(s.Room.Walls[WallY0], f), refl(s.Room.Walls[WallY1], f)},
			{refl(s.Room.Walls[Floor], f), refl(s.Room.Walls[Ceiling], f)},
		}
	}

	for _, xi := range xs {
		for _, yi := range ys {
			if xi.refl+yi.refl > order {
				continue
			}
			for _, zi := range zs {
				totalRefl := xi.refl + yi.refl + zi.refl
				if totalRefl > order {
					continue
				}
				img := geom.Vec3{X: xi.coord, Y: yi.coord, Z: zi.coord}
				d := src.Pos.Dist(img)
				if d < 0.1 {
					d = 0.1
				}
				delaySec := d / c
				delaySamples := delaySec * fs
				offAxis := geom.AngleBetweenDeg(facing, src.Pos, img)
				distGain := 1 / d // amplitude referenced to 1 m
				isDirect := totalRefl == 0
				if isDirect {
					stats.DirectDelay = delaySec
				}
				stats.EarlyCount++
				for bi, band := range s.Bands {
					f := band.Center()
					g := distGain * dir.Gain(f, offAxis) * airAbsorption(f, d)
					g *= pow(beta[bi][0].b0, xi.hits0) * pow(beta[bi][0].b1, xi.hits1)
					g *= pow(beta[bi][1].b0, yi.hits0) * pow(beta[bi][1].b1, yi.hits1)
					g *= pow(beta[bi][2].b0, zi.hits0) * pow(beta[bi][2].b1, zi.hits1)
					if isDirect {
						if s.Obstruction != nil {
							g *= math.Pow(10, -s.Obstruction.LossDB(f)/20)
						}
						if bi == 0 {
							stats.DirectGain = g
						}
					}
					taps[bi] = appendFractionalTap(taps[bi], delaySamples, g)
				}
			}
		}
	}

	// Diffuse velvet-noise tail per band, decorrelated across mics via
	// rng. Tail energy follows E_rev = 16*pi/(Q*A) relative to the
	// unit-gain 1 m direct path, where A is the Sabine absorption area
	// and Q the source's band directivity factor.
	directDelay := src.Pos.Dist(micPos) / c
	tailTaps := s.TailTaps
	if tailTaps == 0 {
		tailTaps = 80
	}
	if tailTaps < 0 {
		return taps, stats
	}
	for bi, band := range s.Bands {
		f := band.Center()
		t60 := s.Room.EyringT60(f)
		tailLen := 0.8 * t60
		if s.MaxTail > 0 && tailLen > s.MaxTail {
			tailLen = s.MaxTail
		}
		area := s.Room.SurfaceArea() * s.Room.MeanAbsorption(f)
		q := DirectivityFactor(dir, f)
		tailScale := s.TailScale
		if tailScale == 0 {
			tailScale = 0.3
		}
		energy := tailScale * 16 * math.Pi / (q * area)
		if bi == 0 {
			stats.TailEnergyOne = energy
		}
		// Draw tap times and raw decaying gains, then scale to the
		// target total energy.
		start := directDelay + 0.008
		decay := 6.91 / t60 // ln(10^3) / T60: -60 dB over T60
		raw := make([]float64, tailTaps)
		times := make([]float64, tailTaps)
		var rawEnergy float64
		for i := 0; i < tailTaps; i++ {
			t := start + rng.Float64()*tailLen
			g := math.Exp(-decay * (t - start))
			if rng.Float64() < 0.5 {
				g = -g
			}
			times[i] = t
			raw[i] = g
			rawEnergy += g * g
		}
		if rawEnergy > 0 {
			scale := math.Sqrt(energy / rawEnergy)
			for i := 0; i < tailTaps; i++ {
				taps[bi] = appendFractionalTap(taps[bi], times[i]*fs, raw[i]*scale)
			}
		}
	}
	return taps, stats
}

func (s *Simulator) sampleRate() float64 {
	if s.SampleRate == 0 {
		return 48000
	}
	return s.SampleRate
}

// MaxDelaySamples returns a safe upper bound on the RIR length in
// samples for sizing capture buffers.
func (s *Simulator) MaxDelaySamples() int {
	c := s.Room.C()
	diag := s.Room.Dims.Norm()
	order := float64(s.ImageOrder)
	maxEarly := diag * (order + 1) / c
	maxTail := s.MaxTail
	if maxTail == 0 {
		maxTail = 0.35
	}
	// Tail starts after the direct path, which is at most one diagonal.
	total := maxEarly + maxTail + diag/c + 0.02
	return int(total * s.sampleRate())
}

// refl returns the amplitude reflection coefficient sqrt(1-alpha).
func refl(m Material, freq float64) float64 {
	a := m.Absorption(freq)
	if a >= 1 {
		return 0
	}
	return math.Sqrt(1 - a)
}

// airAbsorption is a mild distance- and frequency-dependent amplitude
// loss (approximate 20 C / 50% RH atmospheric attenuation).
func airAbsorption(freq, dist float64) float64 {
	db := dist * 0.002 * (freq / 1000) * (freq / 1000)
	return math.Pow(10, -db/20)
}

func pow(b float64, n int) float64 {
	out := 1.0
	for i := 0; i < n; i++ {
		out *= b
	}
	return out
}

// appendFractionalTap splits a fractional-delay tap into two integer
// taps with linear interpolation weights, preserving sub-sample TDoA
// structure across the array. Delays are floored (not truncated toward
// zero) so sub-sample and negative inputs keep correct interpolation
// weights, and any tap that would land before sample zero — reachable
// once source positions vary in time — is clamped to the start instead
// of emitting an out-of-range Delay that ConvolveSparse would drop.
func appendFractionalTap(taps []dsp.SparseTap, delaySamples, gain float64) []dsp.SparseTap {
	if gain == 0 {
		return taps
	}
	if delaySamples <= 0 {
		return append(taps, dsp.SparseTap{Delay: 0, Gain: gain})
	}
	lo := int(math.Floor(delaySamples))
	frac := delaySamples - float64(lo)
	if frac == 0 {
		return append(taps, dsp.SparseTap{Delay: lo, Gain: gain})
	}
	taps = append(taps, dsp.SparseTap{Delay: lo, Gain: gain * (1 - frac)})
	return append(taps, dsp.SparseTap{Delay: lo + 1, Gain: gain * frac})
}
