package room

// Material describes a wall surface by its energy absorption
// coefficient per frequency band. Absorption values follow standard
// architectural-acoustics tables, interpolated onto arbitrary band
// centers.
type Material struct {
	Name string
	// Freqs and Alphas are parallel: absorption coefficient at each
	// reference frequency. Queries outside the range clamp to the
	// nearest endpoint.
	Freqs  []float64
	Alphas []float64
}

// Absorption returns the energy absorption coefficient at freq Hz by
// piecewise-linear interpolation in log-frequency.
func (m Material) Absorption(freq float64) float64 {
	if len(m.Freqs) == 0 {
		return 0.1
	}
	if freq <= m.Freqs[0] {
		return m.Alphas[0]
	}
	last := len(m.Freqs) - 1
	if freq >= m.Freqs[last] {
		return m.Alphas[last]
	}
	for i := 1; i <= last; i++ {
		if freq <= m.Freqs[i] {
			t := (freq - m.Freqs[i-1]) / (m.Freqs[i] - m.Freqs[i-1])
			return m.Alphas[i-1] + t*(m.Alphas[i]-m.Alphas[i-1])
		}
	}
	return m.Alphas[last]
}

// Standard octave-band reference frequencies for the material tables.
var refFreqs = []float64{125, 250, 500, 1000, 2000, 4000, 8000}

// Common room surfaces.
var (
	Drywall = Material{
		Name:   "drywall",
		Freqs:  refFreqs,
		Alphas: []float64{0.29, 0.10, 0.05, 0.04, 0.07, 0.09, 0.10},
	}
	Carpet = Material{
		Name:   "carpet",
		Freqs:  refFreqs,
		Alphas: []float64{0.08, 0.24, 0.57, 0.69, 0.71, 0.73, 0.75},
	}
	AcousticCeiling = Material{
		Name:   "acoustic ceiling tile",
		Freqs:  refFreqs,
		Alphas: []float64{0.70, 0.66, 0.72, 0.92, 0.88, 0.75, 0.70},
	}
	HardFloor = Material{
		Name:   "hard floor",
		Freqs:  refFreqs,
		Alphas: []float64{0.02, 0.03, 0.03, 0.03, 0.03, 0.02, 0.02},
	}
	Furnished = Material{
		Name:   "furnished wall (mixed bookshelves, curtains, sofa)",
		Freqs:  refFreqs,
		Alphas: []float64{0.30, 0.35, 0.40, 0.45, 0.50, 0.55, 0.55},
	}
	WindowGlass = Material{
		Name:   "window glass",
		Freqs:  refFreqs,
		Alphas: []float64{0.35, 0.25, 0.18, 0.12, 0.07, 0.04, 0.03},
	}
)
