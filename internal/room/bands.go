// Package room simulates sound propagation from an oriented speech
// source to a microphone array inside a reverberant shoebox room. It
// implements the physics that HeadTalk's two insights rest on:
//
//   - Insight 1 (paper §III-B2): the room impulse response changes with
//     speaker orientation — modeled with an image-source early
//     reflection pattern plus a diffuse late tail, so the
//     direct-to-reverberant ratio falls as the speaker turns away.
//   - Insight 2: high-frequency speech is directional while low
//     frequencies are omnidirectional — modeled with a frequency-banded
//     directivity pattern applied per propagation path.
//
// The simulator substitutes for the physical rooms, human speakers and
// loudspeakers of the paper's data collection (see DESIGN.md).
package room

import (
	"headtalk/internal/dsp"
)

// Band is a frequency band in Hz. The simulator decomposes source
// signals into bands and applies band-dependent directivity and wall
// absorption.
type Band struct {
	Lo, Hi float64
}

// Center returns the band's geometric center frequency.
func (b Band) Center() float64 {
	return sqrtf(b.Lo * b.Hi)
}

// DefaultBands returns the simulator's standard five-band
// decomposition. Edges follow the feature bands that matter to
// HeadTalk: the 100–500 Hz low band used for the HLBR features, the
// speech formant range, and the >4 kHz region where liveness and
// directivity cues live.
func DefaultBands() []Band {
	return []Band{
		{100, 500},
		{500, 1200},
		{1200, 2500},
		{2500, 5000},
		{5000, 16000},
	}
}

// FineBands returns an eight-band decomposition for higher-fidelity
// (slower) simulation, used by the simulation-fidelity ablation bench.
func FineBands() []Band {
	return []Band{
		{100, 250},
		{250, 500},
		{500, 1000},
		{1000, 2000},
		{2000, 4000},
		{4000, 8000},
		{8000, 12000},
		{12000, 16000},
	}
}

// SplitBands decomposes x into len(bands) signals via FFT-domain
// masking with raised-cosine transitions (10% of band width). Summing
// the outputs reconstructs the band-limited part of x. This is
// computed once per utterance and reused across every capture of it.
func SplitBands(x []float64, fs float64, bands []Band) [][]float64 {
	n := len(x)
	m := dsp.NextPow2(n)
	p := dsp.Plan(m)
	padded := make([]float64, m)
	copy(padded, x)
	// Half-spectrum via the planned real transform; the masked upper
	// half is implied by conjugate symmetry and reconstructed by IRFFT.
	spec := p.RFFT(nil, padded)
	half := m/2 + 1
	out := make([][]float64, len(bands))
	masked := make([]complex128, half)
	for bi, b := range bands {
		for i := range masked {
			masked[i] = 0
		}
		loBin := dsp.FreqBin(b.Lo, m, fs)
		hiBin := dsp.FreqBin(b.Hi, m, fs)
		for i := 0; i < half; i++ {
			// Each edge's transition half-width is 10% of the edge
			// frequency, so the two bands sharing a boundary use the
			// same ramp and their cos^2/sin^2 weights sum to exactly 1.
			w := riseWeight(i, loBin, rampFor(loBin)) * (1 - riseWeight(i, hiBin, rampFor(hiBin)))
			if w == 0 {
				continue
			}
			masked[i] = spec[i] * complex(w, 0)
		}
		full := p.IRFFT(padded, masked)
		sig := make([]float64, n)
		copy(sig, full)
		out[bi] = sig
	}
	return out
}

// rampFor returns the transition half-width in bins for a band edge.
func rampFor(edgeBin int) int {
	r := edgeBin / 10
	if r < 1 {
		r = 1
	}
	return r
}

// riseWeight is a sin^2 ramp from 0 to 1 centered at edge, spanning
// [edge-ramp, edge+ramp]. A band's mask is the product of a rising
// edge at its low boundary and a falling (1-rising) edge at its high
// boundary, so two adjacent bands' weights sum to 1 across the shared
// transition.
func riseWeight(i, edge, ramp int) float64 {
	t := (float64(i-edge) + float64(ramp)) / float64(2*ramp)
	if t <= 0 {
		return 0
	}
	if t >= 1 {
		return 1
	}
	s := sinf(1.5707963267948966 * t)
	return s * s
}
