package room

import "headtalk/internal/geom"

// Trajectory is a piecewise-linear motion path for a source: a sequence
// of poses (position + facing azimuth) traversed at uniform speed over
// the duration of an utterance. It is the time-varying image-source
// input for moving-speaker captures: the capture layer samples the
// trajectory at segment boundaries, renders a full RIR at each sampled
// pose and crossfades between the renders.
type Trajectory struct {
	// Waypoints are the poses visited, in order. One waypoint (or
	// identical waypoints) is a stationary source. Dir is taken from the
	// first waypoint; intermediate Dir values are ignored.
	Waypoints []Source
}

// At returns the interpolated pose at normalized time t in [0, 1].
// Positions interpolate linearly between adjacent waypoints; azimuths
// interpolate along the shorter arc so a 350°→10° turn sweeps 20°, not
// 340°.
func (tr Trajectory) At(t float64) Source {
	n := len(tr.Waypoints)
	if n == 0 {
		return Source{}
	}
	if n == 1 || t <= 0 {
		return tr.Waypoints[0]
	}
	if t >= 1 {
		return tr.Waypoints[n-1]
	}
	// Map t onto segment [k, k+1] of the n-1 equal-duration segments.
	pos := t * float64(n-1)
	k := int(pos)
	if k >= n-1 {
		k = n - 2
	}
	frac := pos - float64(k)
	a, b := tr.Waypoints[k], tr.Waypoints[k+1]
	return Source{
		Pos:     a.Pos.Add(b.Pos.Sub(a.Pos).Scale(frac)),
		Azimuth: a.Azimuth + frac*geom.NormalizeDeg(b.Azimuth-a.Azimuth),
		Dir:     tr.Waypoints[0].Dir,
	}
}

// Stationary reports whether every waypoint shares the first one's
// pose, i.e. the "moving" source never actually moves or turns. The
// capture layer uses this to collapse a degenerate trajectory onto the
// static render path exactly.
func (tr Trajectory) Stationary() bool {
	if len(tr.Waypoints) <= 1 {
		return true
	}
	first := tr.Waypoints[0]
	for _, w := range tr.Waypoints[1:] {
		if w.Pos != first.Pos || geom.NormalizeDeg(w.Azimuth-first.Azimuth) != 0 {
			return false
		}
	}
	return true
}

// LineTrajectory builds the common two-pose path from start to end.
func LineTrajectory(start, end Source) Trajectory {
	return Trajectory{Waypoints: []Source{start, end}}
}
