package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
	"sync"
)

// FFTPlan holds everything precomputed for transforms of one size:
// twiddle tables (forward and conjugate), the bit-reversal permutation,
// real-transform unpack twiddles, and — for non-power-of-two sizes — a
// cached Bluestein chirp with its pre-transformed convolution kernel.
//
// Plans are immutable after construction and safe for concurrent use by
// any number of goroutines; mutable scratch lives in a sync.Pool. Get a
// plan from Plan(n), which caches one per size for the life of the
// process (a handful of sizes dominate: frame lengths and the GCC
// padding sizes).
type FFTPlan struct {
	n int

	// Radix-2 tables (power-of-two n only).
	perm []int32      // bit-reversal permutation
	twf  []complex128 // forward twiddles exp(-2πik/n), k < n/2
	twi  []complex128 // inverse twiddles (conjugates of twf)

	// Real-transform unpack twiddles exp(-2πik/n), k <= n/4 (even n).
	rtw  []complex128
	half *FFTPlan // size n/2 sub-plan driving RFFT/IRFFT (even n)

	bs *bluesteinPlan // non-power-of-two sizes

	pool *sync.Pool // scratch []complex128 (len scratchLen)
}

// bluesteinPlan caches the chirp-z machinery for one non-power-of-two
// size: the forward chirp, the forward transform of the convolution
// kernel b, and the power-of-two plan the convolution runs on.
type bluesteinPlan struct {
	m     int
	mp    *FFTPlan
	chirp []complex128 // exp(-iπ(i² mod 2n)/n)
	bhat  []complex128 // forward FFT of the symmetric kernel conj(chirp)
}

// planCache maps transform size -> *FFTPlan. Plans are only ever added,
// never mutated, so a sync.Map gives lock-free lookups on the hot path.
var planCache sync.Map

// Plan returns the (cached) plan for transforms of length n. It panics
// for n < 1; sizes are a structural property of the caller, not data.
func Plan(n int) *FFTPlan {
	if n < 1 {
		panic(fmt.Sprintf("dsp: invalid FFT plan size %d", n))
	}
	if v, ok := planCache.Load(n); ok {
		return v.(*FFTPlan)
	}
	p := newPlan(n)
	if v, loaded := planCache.LoadOrStore(n, p); loaded {
		// Another goroutine built the same plan concurrently; both are
		// correct, keep the stored one.
		return v.(*FFTPlan)
	}
	return p
}

func newPlan(n int) *FFTPlan {
	p := &FFTPlan{n: n}
	if n == 1 {
		return p
	}
	scratchLen := n / 2
	if IsPow2(n) {
		shift := 64 - uint(bits.Len(uint(n-1)))
		p.perm = make([]int32, n)
		for i := 0; i < n; i++ {
			p.perm[i] = int32(bits.Reverse64(uint64(i)) >> shift)
		}
		p.twf = make([]complex128, n/2)
		p.twi = make([]complex128, n/2)
		for k := range p.twf {
			ang := -2 * math.Pi * float64(k) / float64(n)
			s, c := math.Sincos(ang)
			p.twf[k] = complex(c, s)
			p.twi[k] = complex(c, -s)
		}
	} else {
		p.bs = newBluesteinPlan(n)
		if p.bs.m > scratchLen {
			scratchLen = p.bs.m
		}
	}
	if n%2 == 0 {
		p.half = Plan(n / 2)
		p.rtw = make([]complex128, n/4+1)
		for k := range p.rtw {
			ang := -2 * math.Pi * float64(k) / float64(n)
			s, c := math.Sincos(ang)
			p.rtw[k] = complex(c, s)
		}
	}
	size := scratchLen
	p.pool = &sync.Pool{New: func() any {
		buf := make([]complex128, size)
		return &buf
	}}
	return p
}

func newBluesteinPlan(n int) *bluesteinPlan {
	m := NextPow2(2*n - 1)
	bs := &bluesteinPlan{m: m, mp: Plan(m)}
	bs.chirp = make([]complex128, n)
	bs.bhat = make([]complex128, m)
	for i := 0; i < n; i++ {
		// Chirp phase: pi * i^2 / n, computed modulo 2n to avoid
		// precision loss for large i.
		idx := (int64(i) * int64(i)) % int64(2*n)
		ang := -math.Pi * float64(idx) / float64(n)
		s, c := math.Sincos(ang)
		bs.chirp[i] = complex(c, s)
		b := complex(c, -s)
		bs.bhat[i] = b
		if i > 0 {
			bs.bhat[m-i] = b
		}
	}
	bs.mp.radix2(bs.bhat, false)
	return bs
}

func (p *FFTPlan) getScratch() *[]complex128  { return p.pool.Get().(*[]complex128) }
func (p *FFTPlan) putScratch(s *[]complex128) { p.pool.Put(s) }

// Size returns the transform length the plan was built for.
func (p *FFTPlan) Size() int { return p.n }

// Forward computes the DFT of x in place. len(x) must equal the plan
// size.
func (p *FFTPlan) Forward(x []complex128) {
	p.checkLen(len(x))
	if p.n <= 1 {
		return
	}
	if p.perm != nil {
		p.radix2(x, false)
		return
	}
	p.bluestein(x)
}

// Inverse computes the inverse DFT of x in place, including the 1/N
// normalization. len(x) must equal the plan size.
func (p *FFTPlan) Inverse(x []complex128) {
	p.checkLen(len(x))
	n := p.n
	if n <= 1 {
		return
	}
	scale := 1 / float64(n)
	if p.perm != nil {
		p.radix2(x, true)
		for i := range x {
			x[i] *= complex(scale, 0)
		}
		return
	}
	// Non-power-of-two inverse via the conjugation identity
	// IFFT(x) = conj(FFT(conj(x)))/N, reusing the cached forward chirp.
	for i := range x {
		x[i] = cmplx.Conj(x[i])
	}
	p.bluestein(x)
	for i := range x {
		x[i] = complex(real(x[i])*scale, -imag(x[i])*scale)
	}
}

func (p *FFTPlan) checkLen(got int) {
	if got != p.n {
		panic(fmt.Sprintf("dsp: FFTPlan size %d given slice of length %d", p.n, got))
	}
}

// radix2 is the unscaled iterative Cooley-Tukey transform over the
// plan's precomputed tables. Direct table lookups replace the running
// twiddle product of the old implementation, which accumulated one
// rounding error per butterfly across each stage.
func (p *FFTPlan) radix2(x []complex128, inverse bool) {
	n := p.n
	for i, pj := range p.perm {
		if j := int(pj); j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	tw := p.twf
	if inverse {
		tw = p.twi
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		stride := n / size
		for start := 0; start < n; start += size {
			ti := 0
			for k := start; k < start+half; k++ {
				even := x[k]
				odd := x[k+half] * tw[ti]
				x[k] = even + odd
				x[k+half] = even - odd
				ti += stride
			}
		}
	}
}

// bluestein computes the forward DFT of x (any length) as a convolution
// against the cached pre-transformed kernel, using pooled scratch.
func (p *FFTPlan) bluestein(x []complex128) {
	bs := p.bs
	sp := p.getScratch()
	a := (*sp)[:bs.m]
	for i := 0; i < p.n; i++ {
		a[i] = x[i] * bs.chirp[i]
	}
	for i := p.n; i < bs.m; i++ {
		a[i] = 0
	}
	bs.mp.radix2(a, false)
	for i := range a {
		a[i] *= bs.bhat[i]
	}
	bs.mp.radix2(a, true)
	scale := complex(1/float64(bs.m), 0)
	for i := 0; i < p.n; i++ {
		x[i] = a[i] * scale * bs.chirp[i]
	}
	p.putScratch(sp)
}

// RFFT computes the DFT of the real signal x (len n) and writes the
// non-redundant half-spectrum — bins 0..n/2 inclusive — into dst,
// growing it if needed, and returns dst[:n/2+1]. dst must not alias x.
//
// For even n the signal is packed into an n/2-point complex transform
// (two real samples per complex slot) and unpacked with the plan's
// cached twiddles — about half the work of transforming zero-imaginary
// complex input. Odd (necessarily non-power-of-two) sizes fall back to
// the complex Bluestein path on pooled scratch.
func (p *FFTPlan) RFFT(dst []complex128, x []float64) []complex128 {
	p.checkLen(len(x))
	n := p.n
	bins := n/2 + 1
	if cap(dst) < bins {
		dst = make([]complex128, bins)
	}
	dst = dst[:bins]
	if n == 1 {
		dst[0] = complex(x[0], 0)
		return dst
	}
	if n%2 != 0 {
		sp := p.getScratch()
		c := (*sp)[:n]
		for i, v := range x {
			c[i] = complex(v, 0)
		}
		p.bluestein(c)
		copy(dst, c[:bins])
		p.putScratch(sp)
		return dst
	}
	h := n / 2
	z := dst[:h]
	for i := 0; i < h; i++ {
		z[i] = complex(x[2*i], x[2*i+1])
	}
	p.half.Forward(z)
	// Unpack: with E/O the even/odd-sample sub-spectra, Z[k] = E[k] +
	// i·O[k], so X[k] = E[k] + w·O[k] and X[n/2-k] = conj(E[k] - w·O[k])
	// with w = exp(-2πik/n). Done pairwise in place.
	re0, im0 := real(z[0]), imag(z[0])
	dst[h] = complex(re0-im0, 0)
	dst[0] = complex(re0+im0, 0)
	for k := 1; k <= h/2; k++ {
		zk := dst[k]
		zc := cmplx.Conj(dst[h-k])
		e := (zk + zc) * complex(0.5, 0)
		o := (zk - zc) * complex(0, -0.5)
		t := p.rtw[k] * o
		dst[k] = e + t
		dst[h-k] = cmplx.Conj(e - t)
	}
	return dst
}

// IRFFT inverts a half-spectrum (n/2+1 bins, as produced by RFFT) back
// to n real samples, writing into dst (grown if needed) and returning
// dst[:n]. The upper half of the spectrum is implied by conjugate
// symmetry; the imaginary parts of bins 0 and n/2, which are zero for
// any real signal's spectrum, are ignored. spec is not modified.
func (p *FFTPlan) IRFFT(dst []float64, spec []complex128) []float64 {
	n := p.n
	bins := n/2 + 1
	if len(spec) != bins {
		panic(fmt.Sprintf("dsp: IRFFT size %d wants %d bins, got %d", n, bins, len(spec)))
	}
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	if n == 1 {
		dst[0] = real(spec[0])
		return dst
	}
	if n%2 != 0 {
		sp := p.getScratch()
		c := (*sp)[:n]
		copy(c, spec)
		for i := 1; i < bins; i++ {
			c[n-i] = cmplx.Conj(spec[i])
		}
		p.Inverse(c)
		for i := range dst {
			dst[i] = real(c[i])
		}
		p.putScratch(sp)
		return dst
	}
	h := n / 2
	sp := p.getScratch()
	z := (*sp)[:h]
	// Repack: E[k] = (X[k]+conj(X[n/2-k]))/2, w·O[k] =
	// (X[k]-conj(X[n/2-k]))/2, Z[k] = E[k] + i·O[k].
	e0, eh := real(spec[0]), real(spec[h])
	z[0] = complex((e0+eh)*0.5, (e0-eh)*0.5)
	for k := 1; k <= h/2; k++ {
		xk := spec[k]
		xc := cmplx.Conj(spec[h-k])
		e := (xk + xc) * complex(0.5, 0)
		d := (xk - xc) * complex(0.5, 0)
		o := d * cmplx.Conj(p.rtw[k])
		io := o * complex(0, 1)
		z[k] = e + io
		if k != h-k {
			z[h-k] = cmplx.Conj(e - io)
		}
	}
	p.half.Inverse(z)
	for k := 0; k < h; k++ {
		dst[2*k] = real(z[k])
		dst[2*k+1] = imag(z[k])
	}
	p.putScratch(sp)
	return dst
}

// --- package-level planned entry points ---

// RFFT computes the half-spectrum (len(x)/2+1 bins) of a real signal
// through the cached plan for its length, reusing dst when it has the
// capacity. Pass nil to allocate. See FFTPlan.RFFT.
func RFFT(dst []complex128, x []float64) []complex128 {
	if len(x) == 0 {
		return dst[:0]
	}
	return Plan(len(x)).RFFT(dst, x)
}

// IRFFT inverts a half-spectrum back to n real samples, reusing dst
// when it has the capacity. See FFTPlan.IRFFT.
func IRFFT(dst []float64, spec []complex128, n int) []float64 {
	if n == 0 {
		return dst[:0]
	}
	return Plan(n).IRFFT(dst, spec)
}

// FFTInPlace transforms x in place through the cached plan for its
// length — the allocation-free variant of FFT.
func FFTInPlace(x []complex128) {
	if len(x) <= 1 {
		return
	}
	Plan(len(x)).Forward(x)
}

// IFFTInPlace inverse-transforms x in place (including the 1/N
// normalization) — the allocation-free variant of IFFT.
func IFFTInPlace(x []complex128) {
	if len(x) <= 1 {
		return
	}
	Plan(len(x)).Inverse(x)
}

// HalfSpectrumInto is the dst-reusing variant of HalfSpectrum: it
// writes the n/2+1 non-redundant bins of x's spectrum into dst (grown
// if needed) and returns the sized slice.
func HalfSpectrumInto(dst []complex128, x []float64) []complex128 {
	return RFFT(dst, x)
}

// MagnitudeInto writes |spec[i]| into dst (grown if needed) and
// returns dst[:len(spec)] — the allocation-free variant of Magnitude.
func MagnitudeInto(dst []float64, spec []complex128) []float64 {
	if cap(dst) < len(spec) {
		dst = make([]float64, len(spec))
	}
	dst = dst[:len(spec)]
	for i, v := range spec {
		re, im := real(v), imag(v)
		dst[i] = sqrt(re*re + im*im)
	}
	return dst
}

// PowerInto writes |spec[i]|² into dst (grown if needed) and returns
// dst[:len(spec)] — the allocation-free variant of Power.
func PowerInto(dst []float64, spec []complex128) []float64 {
	if cap(dst) < len(spec) {
		dst = make([]float64, len(spec))
	}
	dst = dst[:len(spec)]
	for i, v := range spec {
		re, im := real(v), imag(v)
		dst[i] = re*re + im*im
	}
	return dst
}
