package dsp

// FFT-engine benchmarks. BENCH_pr3.json records the pre-plan baseline
// for the equivalent operations (tag "pr3-baseline"); `make bench`
// appends current numbers so the trajectory stays diffable.

import (
	"math/rand/v2"
	"testing"
)

func benchReal(n int) []float64 {
	rng := rand.New(rand.NewPCG(42, 43))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

func benchComplex(n int) []complex128 {
	rng := rand.New(rand.NewPCG(7, 9))
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return out
}

// BenchmarkRFFT compares the real-transform paths at n=1024 (the
// spotter's frame size): the packed planned transform with a reused
// destination, the same transform allocating its output, and the
// full-complex-spectrum path RFFT replaces (FFTReal+HalfSpectrum —
// itself already plan-accelerated; the pre-plan number lives in
// BENCH_pr3.json).
func BenchmarkRFFT(b *testing.B) {
	x := benchReal(1024)
	b.Run("viaFFTReal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			full := FFTReal(x)
			_ = full[:len(full)/2+1]
		}
	})
	b.Run("alloc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			RFFT(nil, x)
		}
	})
	b.Run("reuse", func(b *testing.B) {
		p := Plan(1024)
		dst := make([]complex128, 513)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.RFFT(dst, x)
		}
	})
}

// BenchmarkFFTPlan measures the planned complex transform (twiddle
// tables + cached bit-reversal) at a GCC-scale size.
func BenchmarkFFTPlan(b *testing.B) {
	x := benchComplex(4096)
	b.Run("forward4096", func(b *testing.B) {
		p := Plan(4096)
		buf := make([]complex128, 4096)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			copy(buf, x)
			p.Forward(buf)
		}
	})
	b.Run("alloc4096", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			FFT(x)
		}
	})
}

// BenchmarkBluestein measures the cached-chirp non-power-of-two path.
func BenchmarkBluestein(b *testing.B) {
	x := benchComplex(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}

// BenchmarkSTFT frames one second of 48 kHz audio (92 hops of 1024).
func BenchmarkSTFT(b *testing.B) {
	x := benchReal(48000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := STFT(x, 1024, 512, Hann); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWelchPSD averages periodograms over a paper-scale analysis
// window.
func BenchmarkWelchPSD(b *testing.B) {
	x := benchReal(32768)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := WelchPSD(x, 1024); err != nil {
			b.Fatal(err)
		}
	}
}
