// Package dsp provides the signal-processing primitives HeadTalk is
// built on: FFTs, window functions, IIR/FIR filters, resampling,
// convolution, spectral analysis and descriptive statistics. Everything
// is implemented from scratch on top of the standard library so the
// module has no external dependencies.
package dsp

import (
	"math"
	"math/bits"
	"math/cmplx"
)

// NextPow2 returns the smallest power of two >= n. It returns 1 for
// n <= 1.
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool {
	return n > 0 && n&(n-1) == 0
}

// FFT computes the discrete Fourier transform of x and returns a newly
// allocated slice. The input is not modified. Any length is supported:
// power-of-two sizes use an iterative radix-2 Cooley-Tukey transform,
// other sizes fall back to Bluestein's algorithm.
func FFT(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	copy(out, x)
	fftInPlace(out, false)
	return out
}

// IFFT computes the inverse discrete Fourier transform of x, including
// the 1/N normalization, and returns a newly allocated slice.
func IFFT(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	copy(out, x)
	fftInPlace(out, true)
	return out
}

// fftInPlace transforms x in place through the cached plan for its
// length. When inverse is true the conjugate transform is applied and
// the result is scaled by 1/len(x).
func fftInPlace(x []complex128, inverse bool) {
	n := len(x)
	if n <= 1 {
		return
	}
	p := Plan(n)
	if inverse {
		p.Inverse(x)
	} else {
		p.Forward(x)
	}
}

// FFTReal computes the DFT of a real-valued signal and returns the
// full complex spectrum of the same length as x. Even lengths run
// through the packed real transform and mirror the upper half; odd
// lengths take the complex path.
func FFTReal(x []float64) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	if n == 0 {
		return out
	}
	if n == 1 {
		out[0] = complex(x[0], 0)
		return out
	}
	if n%2 == 0 {
		p := Plan(n)
		p.RFFT(out[:n/2+1], x)
		for i := 1; i < n/2; i++ {
			v := out[i]
			out[n-i] = complex(real(v), -imag(v))
		}
		return out
	}
	for i, v := range x {
		out[i] = complex(v, 0)
	}
	fftInPlace(out, false)
	return out
}

// IFFTReal computes the inverse DFT of a spectrum that is assumed to be
// conjugate-symmetric and returns the real part of the result. Small
// imaginary residues from rounding are discarded.
func IFFTReal(spec []complex128) []float64 {
	c := IFFT(spec)
	out := make([]float64, len(c))
	for i, v := range c {
		out[i] = real(v)
	}
	return out
}

// HalfSpectrum returns the non-redundant half of a real signal's
// spectrum: bins 0..n/2 inclusive (n/2+1 bins for even n). It runs the
// packed real transform (see FFTPlan.RFFT); use HalfSpectrumInto to
// reuse an output buffer across calls.
func HalfSpectrum(x []float64) []complex128 {
	return RFFT(nil, x)
}

// Magnitude returns |spec[i]| for every bin.
func Magnitude(spec []complex128) []float64 {
	out := make([]float64, len(spec))
	for i, v := range spec {
		out[i] = cmplx.Abs(v)
	}
	return out
}

// Power returns |spec[i]|^2 for every bin.
func Power(spec []complex128) []float64 {
	out := make([]float64, len(spec))
	for i, v := range spec {
		re, im := real(v), imag(v)
		out[i] = re*re + im*im
	}
	return out
}

// BinFreq returns the center frequency in Hz of FFT bin i for a
// transform of length n at sample rate fs.
func BinFreq(i, n int, fs float64) float64 {
	return float64(i) * fs / float64(n)
}

// FreqBin returns the FFT bin index closest to frequency f for a
// transform of length n at sample rate fs, clamped to [0, n-1].
func FreqBin(f float64, n int, fs float64) int {
	bin := int(math.Round(f * float64(n) / fs))
	if bin < 0 {
		bin = 0
	}
	if bin >= n {
		bin = n - 1
	}
	return bin
}
