// Package dsp provides the signal-processing primitives HeadTalk is
// built on: FFTs, window functions, IIR/FIR filters, resampling,
// convolution, spectral analysis and descriptive statistics. Everything
// is implemented from scratch on top of the standard library so the
// module has no external dependencies.
package dsp

import (
	"math"
	"math/bits"
	"math/cmplx"
)

// NextPow2 returns the smallest power of two >= n. It returns 1 for
// n <= 1.
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool {
	return n > 0 && n&(n-1) == 0
}

// FFT computes the discrete Fourier transform of x and returns a newly
// allocated slice. The input is not modified. Any length is supported:
// power-of-two sizes use an iterative radix-2 Cooley-Tukey transform,
// other sizes fall back to Bluestein's algorithm.
func FFT(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	copy(out, x)
	fftInPlace(out, false)
	return out
}

// IFFT computes the inverse discrete Fourier transform of x, including
// the 1/N normalization, and returns a newly allocated slice.
func IFFT(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	copy(out, x)
	fftInPlace(out, true)
	return out
}

// fftInPlace transforms x in place. When inverse is true the conjugate
// transform is applied and the result is scaled by 1/len(x).
func fftInPlace(x []complex128, inverse bool) {
	n := len(x)
	if n <= 1 {
		return
	}
	if IsPow2(n) {
		radix2(x, inverse)
	} else {
		bluestein(x, inverse)
	}
	if inverse {
		scale := 1 / float64(n)
		for i := range x {
			x[i] *= complex(scale, 0)
		}
	}
}

// radix2 is an iterative decimation-in-time Cooley-Tukey FFT for
// power-of-two lengths. When inverse is true the sign of the twiddle
// exponent is flipped; normalization is the caller's responsibility.
func radix2(x []complex128, inverse bool) {
	n := len(x)
	// Bit-reversal permutation.
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := sign * 2 * math.Pi / float64(size)
		wStep := cmplx.Exp(complex(0, step))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				even := x[start+k]
				odd := x[start+k+half] * w
				x[start+k] = even + odd
				x[start+k+half] = even - odd
				w *= wStep
			}
		}
	}
}

// bluestein computes an arbitrary-length DFT as a convolution via
// power-of-two FFTs (the chirp-z transform).
func bluestein(x []complex128, inverse bool) {
	n := len(x)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	m := NextPow2(2*n - 1)
	a := make([]complex128, m)
	b := make([]complex128, m)
	chirp := make([]complex128, n)
	for i := 0; i < n; i++ {
		// Chirp phase: pi * i^2 / n, computed modulo 2n to avoid
		// precision loss for large i.
		idx := (int64(i) * int64(i)) % int64(2*n)
		phase := sign * math.Pi * float64(idx) / float64(n)
		chirp[i] = cmplx.Exp(complex(0, phase))
		a[i] = x[i] * chirp[i]
		b[i] = cmplx.Conj(chirp[i])
		if i > 0 {
			b[m-i] = b[i]
		}
	}
	radix2(a, false)
	radix2(b, false)
	for i := range a {
		a[i] *= b[i]
	}
	radix2(a, true)
	scale := 1 / float64(m)
	for i := 0; i < n; i++ {
		x[i] = a[i] * complex(scale, 0) * chirp[i]
	}
}

// FFTReal computes the DFT of a real-valued signal and returns the
// full complex spectrum of the same length as x.
func FFTReal(x []float64) []complex128 {
	c := make([]complex128, len(x))
	for i, v := range x {
		c[i] = complex(v, 0)
	}
	fftInPlace(c, false)
	return c
}

// IFFTReal computes the inverse DFT of a spectrum that is assumed to be
// conjugate-symmetric and returns the real part of the result. Small
// imaginary residues from rounding are discarded.
func IFFTReal(spec []complex128) []float64 {
	c := IFFT(spec)
	out := make([]float64, len(c))
	for i, v := range c {
		out[i] = real(v)
	}
	return out
}

// HalfSpectrum returns the non-redundant half of a real signal's
// spectrum: bins 0..n/2 inclusive (n/2+1 bins for even n).
func HalfSpectrum(x []float64) []complex128 {
	full := FFTReal(x)
	return full[:len(full)/2+1]
}

// Magnitude returns |spec[i]| for every bin.
func Magnitude(spec []complex128) []float64 {
	out := make([]float64, len(spec))
	for i, v := range spec {
		out[i] = cmplx.Abs(v)
	}
	return out
}

// Power returns |spec[i]|^2 for every bin.
func Power(spec []complex128) []float64 {
	out := make([]float64, len(spec))
	for i, v := range spec {
		re, im := real(v), imag(v)
		out[i] = re*re + im*im
	}
	return out
}

// BinFreq returns the center frequency in Hz of FFT bin i for a
// transform of length n at sample rate fs.
func BinFreq(i, n int, fs float64) float64 {
	return float64(i) * fs / float64(n)
}

// FreqBin returns the FFT bin index closest to frequency f for a
// transform of length n at sample rate fs, clamped to [0, n-1].
func FreqBin(f float64, n int, fs float64) int {
	bin := int(math.Round(f * float64(n) / fs))
	if bin < 0 {
		bin = 0
	}
	if bin >= n {
		bin = n - 1
	}
	return bin
}
