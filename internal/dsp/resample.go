package dsp

import "fmt"

// Decimate low-pass filters x (windowed-sinc FIR at 0.45 of the target
// Nyquist) and keeps every factor-th sample. It is the fast path for
// integer-ratio downsampling such as 48 kHz -> 16 kHz (factor 3).
func Decimate(x []float64, factor int) ([]float64, error) {
	if factor < 1 {
		return nil, fmt.Errorf("dsp: decimation factor %d must be >= 1", factor)
	}
	if factor == 1 {
		out := make([]float64, len(x))
		copy(out, x)
		return out, nil
	}
	// Anti-alias filter: cutoff just below the new Nyquist frequency.
	// Work in normalized units with fs = 1.
	cutoff := 0.45 / float64(factor)
	taps := FIRLowPass(8*factor+1, cutoff, 1.0)
	filtered := FIRFilter(x, taps)
	// Compensate the FIR group delay so decimated output aligns with
	// the input timeline.
	delay := (len(taps) - 1) / 2
	n := (len(x) + factor - 1) / factor
	out := make([]float64, 0, n)
	for i := 0; i < len(x); i += factor {
		j := i + delay
		if j >= len(filtered) {
			j = len(filtered) - 1
		}
		out = append(out, filtered[j])
	}
	return out, nil
}

// Resample converts x from sample rate from to sample rate to. Integer
// downsampling ratios use Decimate; all other ratios use band-limited
// linear interpolation (adequate for the synthesis-side rate changes in
// this repo, where the source material is already band-limited).
func Resample(x []float64, from, to float64) ([]float64, error) {
	if from <= 0 || to <= 0 {
		return nil, fmt.Errorf("dsp: sample rates must be positive (from=%g to=%g)", from, to)
	}
	if from == to {
		out := make([]float64, len(x))
		copy(out, x)
		return out, nil
	}
	if ratio := from / to; ratio == float64(int(ratio)) && ratio > 1 {
		return Decimate(x, int(ratio))
	}
	src := x
	if to < from {
		// Downsampling by a non-integer ratio: anti-alias first.
		cutoff := 0.45 * to
		taps := FIRLowPass(65, cutoff, from)
		filtered := FIRFilter(x, taps)
		delay := (len(taps) - 1) / 2
		src = make([]float64, len(x))
		for i := range src {
			j := i + delay
			if j >= len(filtered) {
				j = len(filtered) - 1
			}
			src[i] = filtered[j]
		}
	}
	n := int(float64(len(src)) * to / from)
	out := make([]float64, n)
	step := from / to
	for i := range out {
		pos := float64(i) * step
		lo := int(pos)
		if lo >= len(src)-1 {
			out[i] = src[len(src)-1]
			continue
		}
		frac := pos - float64(lo)
		out[i] = src[lo]*(1-frac) + src[lo+1]*frac
	}
	return out, nil
}
