package dsp

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of x, or 0 for empty input.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var sum float64
	for _, v := range x {
		sum += v
	}
	return sum / float64(len(x))
}

// Variance returns the population variance of x, or 0 for fewer than
// two samples.
func Variance(x []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	m := Mean(x)
	var acc float64
	for _, v := range x {
		d := v - m
		acc += d * d
	}
	return acc / float64(len(x))
}

// Std returns the population standard deviation of x.
func Std(x []float64) float64 {
	return math.Sqrt(Variance(x))
}

// SampleStd returns the sample (n-1) standard deviation of x.
func SampleStd(x []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	m := Mean(x)
	var acc float64
	for _, v := range x {
		d := v - m
		acc += d * d
	}
	return math.Sqrt(acc / float64(len(x)-1))
}

// RMS returns the root-mean-square of x, or 0 for empty input.
func RMS(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var acc float64
	for _, v := range x {
		acc += v * v
	}
	return math.Sqrt(acc / float64(len(x)))
}

// Max returns the maximum value of x, or -Inf for empty input.
func Max(x []float64) float64 {
	out := math.Inf(-1)
	for _, v := range x {
		if v > out {
			out = v
		}
	}
	return out
}

// Min returns the minimum value of x, or +Inf for empty input.
func Min(x []float64) float64 {
	out := math.Inf(1)
	for _, v := range x {
		if v < out {
			out = v
		}
	}
	return out
}

// MaxAbs returns the largest absolute value in x, or 0 for empty input.
func MaxAbs(x []float64) float64 {
	var out float64
	for _, v := range x {
		if a := math.Abs(v); a > out {
			out = a
		}
	}
	return out
}

// ArgMax returns the index of the maximum value, or -1 for empty input.
func ArgMax(x []float64) int {
	if len(x) == 0 {
		return -1
	}
	best := 0
	for i, v := range x {
		if v > x[best] {
			best = i
		}
	}
	return best
}

// Skewness returns the sample skewness (third standardized moment) of
// x, or 0 when undefined.
func Skewness(x []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	m := Mean(x)
	s := Std(x)
	if s == 0 {
		return 0
	}
	var acc float64
	for _, v := range x {
		d := (v - m) / s
		acc += d * d * d
	}
	return acc / float64(len(x))
}

// Kurtosis returns the sample kurtosis (fourth standardized moment,
// non-excess: a Gaussian gives ~3) of x, or 0 when undefined.
func Kurtosis(x []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	m := Mean(x)
	s := Std(x)
	if s == 0 {
		return 0
	}
	var acc float64
	for _, v := range x {
		d := (v - m) / s
		acc += d * d * d * d
	}
	return acc / float64(len(x))
}

// MAD returns the mean absolute deviation of x about its mean.
func MAD(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	m := Mean(x)
	var acc float64
	for _, v := range x {
		acc += math.Abs(v - m)
	}
	return acc / float64(len(x))
}

// Median returns the median of x, or 0 for empty input. The input is
// not modified.
func Median(x []float64) float64 {
	return Percentile(x, 50)
}

// Percentile returns the p-th percentile of x (0 <= p <= 100) using
// linear interpolation between closest ranks. The input is not
// modified.
func Percentile(x []float64, p float64) float64 {
	if len(x) == 0 {
		return 0
	}
	sorted := make([]float64, len(x))
	copy(sorted, x)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Normalize scales x so its maximum absolute value is 1 and returns a
// new slice. Silent input is returned as a copy unchanged.
func Normalize(x []float64) []float64 {
	out := make([]float64, len(x))
	peak := MaxAbs(x)
	if peak == 0 {
		copy(out, x)
		return out
	}
	for i, v := range x {
		out[i] = v / peak
	}
	return out
}

// ZScore standardizes x to zero mean and unit variance and returns a
// new slice. Constant input yields all zeros.
func ZScore(x []float64) []float64 {
	return ZScoreInto(make([]float64, len(x)), x)
}

// ZScoreInto is the dst-reusing variant of ZScore: it standardizes x
// into dst (grown if needed) and returns dst[:len(x)]. Constant input
// yields all zeros. dst may alias x.
func ZScoreInto(dst, x []float64) []float64 {
	if cap(dst) < len(x) {
		dst = make([]float64, len(x))
	}
	dst = dst[:len(x)]
	m := Mean(x)
	s := Std(x)
	if s == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return dst
	}
	for i, v := range x {
		dst[i] = (v - m) / s
	}
	return dst
}

// Peak is a local maximum found by TopPeaks.
type Peak struct {
	Index int
	Value float64
}

// TopPeaks returns up to k local maxima of x ordered by descending
// value. A local maximum is a sample strictly greater than both
// neighbors; plateau edges and the first/last samples are not
// considered.
func TopPeaks(x []float64, k int) []Peak {
	return TopPeaksInto(nil, x, k)
}

// TopPeaksInto is TopPeaks writing into scratch (grown as needed and
// returned truncated to the result). With a caller-reused scratch whose
// capacity covers the peak count it performs no allocation: the sort is
// an in-place insertion sort rather than sort.Slice, whose closure and
// interface boxing allocate.
func TopPeaksInto(scratch []Peak, x []float64, k int) []Peak {
	peaks := scratch[:0]
	for i := 1; i < len(x)-1; i++ {
		if x[i] > x[i-1] && x[i] > x[i+1] {
			peaks = append(peaks, Peak{Index: i, Value: x[i]})
		}
	}
	// Insertion sort by descending value. Stable, like sort.Slice is
	// not, but ties in Value keep ascending-index order either way
	// because candidates are appended in index order.
	for i := 1; i < len(peaks); i++ {
		p := peaks[i]
		j := i - 1
		for j >= 0 && peaks[j].Value < p.Value {
			peaks[j+1] = peaks[j]
			j--
		}
		peaks[j+1] = p
	}
	if len(peaks) > k {
		peaks = peaks[:k]
	}
	return peaks
}
