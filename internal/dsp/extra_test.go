package dsp

import (
	"math"
	"math/cmplx"
	"math/rand/v2"
	"testing"
)

func TestConvolutionTheorem(t *testing.T) {
	// FFT(x ⊛ h) = FFT(x) · FFT(h) for circular convolution; verify
	// via the linear-convolution helper against the spectral product.
	rng := rand.New(rand.NewPCG(41, 42))
	n := 64
	x := make([]float64, n)
	h := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		h[i] = rng.NormFloat64()
	}
	lin := Convolve(x, h) // length 2n-1
	m := NextPow2(2 * n)
	fx := make([]complex128, m)
	fh := make([]complex128, m)
	for i := 0; i < n; i++ {
		fx[i] = complex(x[i], 0)
		fh[i] = complex(h[i], 0)
	}
	fx = FFT(fx)
	fh = FFT(fh)
	for i := range fx {
		fx[i] *= fh[i]
	}
	back := IFFT(fx)
	for i := range lin {
		if cmplx.Abs(back[i]-complex(lin[i], 0)) > 1e-8 {
			t.Fatalf("convolution theorem violated at %d", i)
		}
	}
}

func TestPercentileInterpolation(t *testing.T) {
	x := []float64{10, 20, 30, 40}
	if got := Percentile(x, 25); math.Abs(got-17.5) > 1e-12 {
		t.Errorf("25th percentile %g, want 17.5", got)
	}
	if got := Median([]float64{1, 2, 3, 100}); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("even-count median %g, want 2.5", got)
	}
}

func TestBlackmanWindowShape(t *testing.T) {
	c := Blackman.Coefficients(128)
	// Blackman edges are ~0 (slightly negative rounding is the exact
	// -0.0000… value of the formula).
	if math.Abs(c[0]) > 1e-12 {
		t.Errorf("Blackman edge %g", c[0])
	}
	if c[64] < 0.99 {
		t.Errorf("Blackman center %g", c[64])
	}
}

func TestFIRFilterImpulse(t *testing.T) {
	h := []float64{0.25, 0.5, 0.25}
	x := make([]float64, 8)
	x[2] = 1
	y := FIRFilter(x, h)
	want := []float64{0, 0, 0.25, 0.5, 0.25, 0, 0, 0}
	for i := range want {
		if math.Abs(y[i]-want[i]) > 1e-12 {
			t.Fatalf("FIR impulse mismatch at %d: %g", i, y[i])
		}
	}
}

func TestWindowStrings(t *testing.T) {
	names := map[Window]string{
		Rectangular: "rectangular", Hann: "hann", Hamming: "hamming",
		Blackman: "blackman", Window(99): "unknown",
	}
	for w, want := range names {
		if got := w.String(); got != want {
			t.Errorf("%d.String() = %q", w, got)
		}
	}
}
