package dsp

import "fmt"

// BandEnergy returns the mean magnitude of the spectrum bins between lo
// and hi Hz (inclusive) for a half-spectrum of a length-n transform at
// sample rate fs. It returns 0 when the band contains no bins.
func BandEnergy(halfSpec []complex128, n int, fs, lo, hi float64) float64 {
	loBin := FreqBin(lo, n, fs)
	hiBin := FreqBin(hi, n, fs)
	if hiBin >= len(halfSpec) {
		hiBin = len(halfSpec) - 1
	}
	if loBin > hiBin {
		return 0
	}
	var acc float64
	for i := loBin; i <= hiBin; i++ {
		re, im := real(halfSpec[i]), imag(halfSpec[i])
		acc += hypot(re, im)
	}
	return acc / float64(hiBin-loBin+1)
}

func hypot(a, b float64) float64 {
	// math.Hypot is robust but slow; plain sqrt is fine for audio-scale
	// magnitudes.
	return sqrt(a*a + b*b)
}

// frameCount returns how many full frames of frameLen hopped by hop fit
// in n samples.
func frameCount(n, frameLen, hop int) int {
	if n < frameLen {
		return 0
	}
	return (n-frameLen)/hop + 1
}

// STFT computes a short-time Fourier transform of x with the given
// frame length, hop size and window, returning one half-spectrum per
// frame. Frames that would run past the end of x are dropped. Frame
// storage is allocated up front in one flat backing array (the frame
// count is known), and a single scratch buffer carries each windowed
// frame into the planned real transform.
func STFT(x []float64, frameLen, hop int, win Window) ([][]complex128, error) {
	if frameLen <= 0 || hop <= 0 {
		return nil, fmt.Errorf("dsp: invalid STFT parameters frameLen=%d hop=%d", frameLen, hop)
	}
	coeffs := win.Coefficients(frameLen)
	count := frameCount(len(x), frameLen, hop)
	if count == 0 {
		return nil, nil
	}
	bins := frameLen/2 + 1
	frames := make([][]complex128, count)
	backing := make([]complex128, count*bins)
	scratch := make([]float64, frameLen)
	p := Plan(frameLen)
	for fi := 0; fi < count; fi++ {
		start := fi * hop
		for i := range scratch {
			scratch[i] = x[start+i] * coeffs[i]
		}
		frames[fi] = p.RFFT(backing[fi*bins:fi*bins:(fi+1)*bins], scratch)
	}
	return frames, nil
}

// Spectrogram returns the magnitude spectrogram of x (frames ×
// frequency bins).
func Spectrogram(x []float64, frameLen, hop int, win Window) ([][]float64, error) {
	frames, err := STFT(x, frameLen, hop, win)
	if err != nil {
		return nil, err
	}
	out := make([][]float64, len(frames))
	if len(frames) == 0 {
		return out, nil
	}
	bins := len(frames[0])
	backing := make([]float64, len(frames)*bins)
	for i, f := range frames {
		out[i] = MagnitudeInto(backing[i*bins:i*bins:(i+1)*bins], f)
	}
	return out, nil
}

// WelchPSD estimates the power spectral density of x by averaging
// periodograms of Hann-windowed segments with 50% overlap. It returns
// the one-sided PSD (frameLen/2+1 bins) and works for any signal at
// least one frame long.
func WelchPSD(x []float64, frameLen int) ([]float64, error) {
	if frameLen <= 0 {
		return nil, fmt.Errorf("dsp: invalid frame length %d", frameLen)
	}
	if len(x) < frameLen {
		return nil, fmt.Errorf("dsp: signal length %d < frame length %d", len(x), frameLen)
	}
	hop := frameLen / 2
	if hop == 0 {
		hop = 1
	}
	win := Hann.Coefficients(frameLen)
	var winPower float64
	for _, w := range win {
		winPower += w * w
	}
	bins := frameLen/2 + 1
	psd := make([]float64, bins)
	scratch := make([]float64, frameLen)
	spec := make([]complex128, bins)
	p := Plan(frameLen)
	var count int
	for start := 0; start+frameLen <= len(x); start += hop {
		for i := range scratch {
			scratch[i] = x[start+i] * win[i]
		}
		p.RFFT(spec, scratch)
		for i, v := range spec {
			re, im := real(v), imag(v)
			psd[i] += (re*re + im*im) / winPower
		}
		count++
	}
	for i := range psd {
		psd[i] /= float64(count)
	}
	return psd, nil
}

// SpectralCentroid returns the magnitude-weighted mean frequency of x
// at sample rate fs, a coarse "brightness" measure used by the liveness
// feature set.
func SpectralCentroid(x []float64, fs float64) float64 {
	spec := HalfSpectrum(x)
	var num, den float64
	n := len(x)
	for i, v := range spec {
		re, im := real(v), imag(v)
		mag := hypot(re, im)
		num += BinFreq(i, n, fs) * mag
		den += mag
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// SpectralRolloff returns the frequency below which frac (e.g. 0.85) of
// the total spectral magnitude of x lies.
func SpectralRolloff(x []float64, fs, frac float64) float64 {
	spec := HalfSpectrum(x)
	mags := Magnitude(spec)
	var total float64
	for _, m := range mags {
		total += m
	}
	if total == 0 {
		return 0
	}
	target := frac * total
	var acc float64
	for i, m := range mags {
		acc += m
		if acc >= target {
			return BinFreq(i, len(x), fs)
		}
	}
	return fs / 2
}

// SpectralFlatness returns the ratio of geometric to arithmetic mean of
// the power spectrum in the band [lo, hi] Hz. Values near 1 indicate
// noise-like (flat) spectra; values near 0 indicate tonal spectra. The
// paper's observation that replayed audio is "more uniform above 4 kHz"
// is exactly a high-band flatness statement.
func SpectralFlatness(x []float64, fs, lo, hi float64) float64 {
	spec := HalfSpectrum(x)
	pow := Power(spec)
	n := len(x)
	loBin := FreqBin(lo, n, fs)
	hiBin := FreqBin(hi, n, fs)
	if hiBin >= len(pow) {
		hiBin = len(pow) - 1
	}
	if loBin >= hiBin {
		return 0
	}
	var logSum, sum float64
	count := 0
	for i := loBin; i <= hiBin; i++ {
		p := pow[i] + 1e-20
		logSum += ln(p)
		sum += p
		count++
	}
	arith := sum / float64(count)
	geo := exp(logSum / float64(count))
	if arith == 0 {
		return 0
	}
	return geo / arith
}
