package dsp

import "math"

// Thin wrappers keep the hot spectral loops readable.
func sqrt(x float64) float64 { return math.Sqrt(x) }
func ln(x float64) float64   { return math.Log(x) }
func exp(x float64) float64  { return math.Exp(x) }
