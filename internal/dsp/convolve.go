package dsp

// Convolve returns the full linear convolution of x and h, of length
// len(x)+len(h)-1. It automatically selects direct or FFT-based
// computation based on input sizes.
func Convolve(x, h []float64) []float64 {
	if len(x) == 0 || len(h) == 0 {
		return nil
	}
	// Direct convolution wins for short kernels.
	if len(h) <= 64 || len(x) <= 64 {
		return convolveDirect(x, h)
	}
	return convolveFFT(x, h)
}

func convolveDirect(x, h []float64) []float64 {
	out := make([]float64, len(x)+len(h)-1)
	for i, xv := range x {
		if xv == 0 {
			continue
		}
		for j, hv := range h {
			out[i+j] += xv * hv
		}
	}
	return out
}

func convolveFFT(x, h []float64) []float64 {
	n := len(x) + len(h) - 1
	m := NextPow2(n)
	p := Plan(m)
	padded := make([]float64, m)
	copy(padded, x)
	xf := p.RFFT(nil, padded)
	for i := range padded {
		padded[i] = 0
	}
	copy(padded, h)
	hf := p.RFFT(nil, padded)
	for i := range xf {
		xf[i] *= hf[i]
	}
	r := p.IRFFT(padded, xf)
	return r[:n]
}

// SparseTap is a single impulse-response tap at an integer sample
// delay, used for efficient image-source convolution where the RIR is a
// sparse set of scaled delays.
type SparseTap struct {
	Delay int     // sample delay (>= 0)
	Gain  float64 // amplitude
}

// ConvolveSparse convolves x with a sparse impulse response given as a
// tap list and accumulates the result into dst (dst must be at least
// len(x)+maxDelay long; extra room beyond dst's length is silently
// truncated). Accumulating lets callers mix several band-limited
// contributions into one output buffer.
func ConvolveSparse(dst, x []float64, taps []SparseTap) {
	for _, t := range taps {
		if t.Gain == 0 || t.Delay < 0 {
			continue
		}
		limit := len(dst) - t.Delay
		if limit > len(x) {
			limit = len(x)
		}
		out := dst[t.Delay:]
		for i := 0; i < limit; i++ {
			out[i] += t.Gain * x[i]
		}
	}
}

// CrossCorrelate returns the biased cross-correlation of a and b at lags
// -maxLag..+maxLag (2*maxLag+1 values, lag 0 at index maxLag):
// r[k] = sum_n a[n+k]*b[n]. Positive lag means a leads b.
func CrossCorrelate(a, b []float64, maxLag int) []float64 {
	out := make([]float64, 2*maxLag+1)
	for k := -maxLag; k <= maxLag; k++ {
		var acc float64
		for n := 0; n < len(b); n++ {
			i := n + k
			if i < 0 || i >= len(a) {
				continue
			}
			acc += a[i] * b[n]
		}
		out[k+maxLag] = acc
	}
	return out
}
