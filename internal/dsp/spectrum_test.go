package dsp

import (
	"math"
	"math/rand/v2"
	"testing"
)

func sine(freq, fs float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Sin(2 * math.Pi * freq * float64(i) / fs)
	}
	return out
}

func TestWindowsUnityAtCenterish(t *testing.T) {
	for _, w := range []Window{Hann, Hamming, Blackman} {
		c := w.Coefficients(64)
		if len(c) != 64 {
			t.Fatalf("%s: length %d", w, len(c))
		}
		if c[32] < 0.9 {
			t.Errorf("%s: center coefficient %g, want ~1", w, c[32])
		}
		if c[0] > 0.1 {
			t.Errorf("%s: edge coefficient %g, want ~0", w, c[0])
		}
	}
}

func TestWindowEdgeCases(t *testing.T) {
	if got := Hann.Coefficients(0); len(got) != 0 {
		t.Error("zero-length window should be empty")
	}
	if got := Hann.Coefficients(1); got[0] != 1 {
		t.Error("length-1 window should be [1]")
	}
	rect := Rectangular.Coefficients(8)
	for _, v := range rect {
		if v != 1 {
			t.Fatal("rectangular window should be all ones")
		}
	}
}

func TestApplyWindowErrorsOnMismatch(t *testing.T) {
	if _, err := ApplyWindow([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("expected error on length mismatch")
	}
	out, err := ApplyWindow([]float64{2, 3}, []float64{0.5, 2})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 1 || out[1] != 6 {
		t.Errorf("windowed samples = %v, want [1 6]", out)
	}
}

func TestSTFTFrameCount(t *testing.T) {
	x := make([]float64, 1000)
	frames, err := STFT(x, 256, 128, Hann)
	if err != nil {
		t.Fatal(err)
	}
	// Starts at 0,128,256,...,744: floor((1000-256)/128)+1 = 6.
	if len(frames) != 6 {
		t.Errorf("got %d frames, want 6", len(frames))
	}
	if len(frames[0]) != 129 {
		t.Errorf("frame spectrum length %d, want 129", len(frames[0]))
	}
}

func TestSTFTInvalidParams(t *testing.T) {
	if _, err := STFT(make([]float64, 100), 0, 10, Hann); err == nil {
		t.Error("expected error for zero frame length")
	}
	if _, err := STFT(make([]float64, 100), 64, 0, Hann); err == nil {
		t.Error("expected error for zero hop")
	}
}

func TestSpectrogramShape(t *testing.T) {
	spec, err := Spectrogram(make([]float64, 512), 128, 64, Hann)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec) == 0 || len(spec[0]) != 65 {
		t.Errorf("spectrogram shape %dx%d", len(spec), len(spec[0]))
	}
}

func TestWelchPSDPeak(t *testing.T) {
	const fs = 8000.0
	x := sine(1000, fs, 8000)
	psd, err := WelchPSD(x, 512)
	if err != nil {
		t.Fatal(err)
	}
	peakBin := ArgMax(psd)
	peakFreq := BinFreq(peakBin, 512, fs)
	if math.Abs(peakFreq-1000) > fs/512 {
		t.Errorf("PSD peak at %g Hz, want ~1000", peakFreq)
	}
}

func TestWelchPSDErrors(t *testing.T) {
	if _, err := WelchPSD(make([]float64, 10), 0); err == nil {
		t.Error("expected error for zero frame length")
	}
	if _, err := WelchPSD(make([]float64, 10), 64); err == nil {
		t.Error("expected error for too-short signal")
	}
}

func TestBandEnergy(t *testing.T) {
	const fs = 8000.0
	n := 4096
	x := sine(1000, fs, n)
	spec := HalfSpectrum(x)
	in := BandEnergy(spec, n, fs, 900, 1100)
	out := BandEnergy(spec, n, fs, 2000, 3000)
	if in <= 10*out {
		t.Errorf("tone band energy %g not dominant over empty band %g", in, out)
	}
	if BandEnergy(spec, n, fs, 3000, 2000) != 0 {
		t.Error("inverted band should give 0")
	}
}

func TestSpectralCentroidOrdering(t *testing.T) {
	const fs = 8000.0
	low := SpectralCentroid(sine(500, fs, 4096), fs)
	high := SpectralCentroid(sine(2500, fs, 4096), fs)
	if low >= high {
		t.Errorf("centroid ordering wrong: %g >= %g", low, high)
	}
	if math.Abs(low-500) > 100 {
		t.Errorf("centroid of 500 Hz tone = %g", low)
	}
}

func TestSpectralCentroidSilence(t *testing.T) {
	if got := SpectralCentroid(make([]float64, 256), 8000); got != 0 {
		t.Errorf("silent centroid = %g, want 0", got)
	}
}

func TestSpectralRolloff(t *testing.T) {
	const fs = 8000.0
	x := sine(1000, fs, 4096)
	r := SpectralRolloff(x, fs, 0.85)
	if math.Abs(r-1000) > 100 {
		t.Errorf("rolloff = %g, want ~1000 for a pure tone", r)
	}
	if got := SpectralRolloff(make([]float64, 256), fs, 0.85); got != 0 {
		t.Errorf("silent rolloff = %g", got)
	}
}

func TestSpectralFlatnessToneVsNoise(t *testing.T) {
	const fs = 8000.0
	rng := rand.New(rand.NewPCG(1, 1))
	noise := make([]float64, 4096)
	for i := range noise {
		noise[i] = rng.NormFloat64()
	}
	tone := sine(1000, fs, 4096)
	fNoise := SpectralFlatness(noise, fs, 200, 3800)
	fTone := SpectralFlatness(tone, fs, 200, 3800)
	if fNoise < 0.5 {
		t.Errorf("white noise flatness = %g, want near 1", fNoise)
	}
	if fTone > 0.1 {
		t.Errorf("pure tone flatness = %g, want near 0", fTone)
	}
}
