package dsp

import (
	"math"
	"math/cmplx"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// naiveDFT is the O(n^2) reference implementation.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		for t := 0; t < n; t++ {
			angle := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			out[k] += x[t] * cmplx.Exp(complex(0, angle))
		}
	}
	return out
}

func randComplex(n int, rng *rand.Rand) []complex128 {
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return out
}

func maxErr(a, b []complex128) float64 {
	var m float64
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	// Power-of-two sizes exercise radix-2; others exercise Bluestein.
	for _, n := range []int{1, 2, 4, 8, 16, 64, 3, 5, 7, 12, 30, 100} {
		x := randComplex(n, rng)
		got := FFT(x)
		want := naiveDFT(x)
		if err := maxErr(got, want); err > 1e-8*float64(n) {
			t.Errorf("n=%d: max error %g vs naive DFT", n, err)
		}
	}
}

func TestIFFTInvertsFFT(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for _, n := range []int{2, 8, 17, 31, 128, 1000} {
		x := randComplex(n, rng)
		back := IFFT(FFT(x))
		if err := maxErr(x, back); err > 1e-9*float64(n) {
			t.Errorf("n=%d: round-trip error %g", n, err)
		}
	}
}

func TestFFTDoesNotModifyInput(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	x := randComplex(64, rng)
	orig := append([]complex128{}, x...)
	FFT(x)
	for i := range x {
		if x[i] != orig[i] {
			t.Fatalf("FFT modified its input at %d", i)
		}
	}
}

func TestFFTLinearity(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	x := randComplex(32, rng)
	y := randComplex(32, rng)
	sum := make([]complex128, 32)
	for i := range sum {
		sum[i] = x[i] + 2*y[i]
	}
	fx, fy, fsum := FFT(x), FFT(y), FFT(sum)
	for i := range fsum {
		want := fx[i] + 2*fy[i]
		if cmplx.Abs(fsum[i]-want) > 1e-9 {
			t.Fatalf("linearity violated at bin %d", i)
		}
	}
}

func TestParseval(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	for _, n := range []int{16, 64, 100} {
		x := randComplex(n, rng)
		spec := FFT(x)
		var timeEnergy, freqEnergy float64
		for i := range x {
			timeEnergy += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
			freqEnergy += real(spec[i])*real(spec[i]) + imag(spec[i])*imag(spec[i])
		}
		freqEnergy /= float64(n)
		if math.Abs(timeEnergy-freqEnergy) > 1e-6*timeEnergy {
			t.Errorf("n=%d: Parseval violated: time=%g freq=%g", n, timeEnergy, freqEnergy)
		}
	}
}

func TestFFTRealSinusoidPeak(t *testing.T) {
	const (
		n  = 1024
		fs = 48000.0
	)
	freq := 1500.0
	// Pick an exact bin frequency to avoid leakage.
	bin := FreqBin(freq, n, fs)
	exact := BinFreq(bin, n, fs)
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * exact * float64(i) / fs)
	}
	mags := Magnitude(HalfSpectrum(x))
	peak := ArgMax(mags)
	if peak != bin {
		t.Fatalf("sinusoid at bin %d peaked at bin %d", bin, peak)
	}
}

func TestHalfSpectrumLength(t *testing.T) {
	for _, n := range []int{2, 16, 100, 1024} {
		x := make([]float64, n)
		if got, want := len(HalfSpectrum(x)), n/2+1; got != want {
			t.Errorf("n=%d: half spectrum length %d, want %d", n, got, want)
		}
	}
}

func TestIFFTRealRecoversRealSignal(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	x := make([]float64, 256)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	back := IFFTReal(FFTReal(x))
	for i := range x {
		if math.Abs(x[i]-back[i]) > 1e-9 {
			t.Fatalf("round trip mismatch at %d: %g vs %g", i, x[i], back[i])
		}
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{-3: 1, 0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1023: 1024, 1024: 1024, 1025: 2048}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestIsPow2(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 1024} {
		if !IsPow2(n) {
			t.Errorf("IsPow2(%d) = false", n)
		}
	}
	for _, n := range []int{0, -2, 3, 6, 1000} {
		if IsPow2(n) {
			t.Errorf("IsPow2(%d) = true", n)
		}
	}
}

func TestFreqBinClamps(t *testing.T) {
	if got := FreqBin(-100, 64, 48000); got != 0 {
		t.Errorf("negative frequency bin = %d, want 0", got)
	}
	if got := FreqBin(1e9, 64, 48000); got != 63 {
		t.Errorf("huge frequency bin = %d, want 63", got)
	}
}

func TestFFTRoundTripProperty(t *testing.T) {
	f := func(re, im [8]float64) bool {
		x := make([]complex128, 8)
		for i := range x {
			x[i] = complex(clampQuick(re[i]), clampQuick(im[i]))
		}
		back := IFFT(FFT(x))
		return maxErr(x, back) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// clampQuick keeps testing/quick's occasionally huge floats finite.
func clampQuick(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	if v > 1e6 {
		return 1e6
	}
	if v < -1e6 {
		return -1e6
	}
	return v
}
