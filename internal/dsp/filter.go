package dsp

import (
	"fmt"
	"math"
)

// Biquad is a single second-order IIR section in direct form II
// transposed. The zero value is an identity filter only after
// coefficients are set; use the design constructors in this package.
type Biquad struct {
	B0, B1, B2 float64 // feed-forward coefficients
	A1, A2     float64 // feedback coefficients (a0 normalized to 1)
	z1, z2     float64 // state
}

// Process filters one sample through the section.
func (b *Biquad) Process(x float64) float64 {
	y := b.B0*x + b.z1
	b.z1 = b.B1*x - b.A1*y + b.z2
	b.z2 = b.B2*x - b.A2*y
	return y
}

// Reset clears the section's internal state.
func (b *Biquad) Reset() {
	b.z1, b.z2 = 0, 0
}

// IIRFilter is a cascade of biquad sections.
type IIRFilter struct {
	sections []Biquad
}

// Sections returns the number of biquad sections in the cascade.
func (f *IIRFilter) Sections() int { return len(f.sections) }

// Clone returns an independent filter with the same coefficients and
// freshly reset state. Cloning a designed filter is much cheaper than
// re-running the design math (no trig), and gives each goroutine its
// own biquad state so concurrent Apply calls never race.
func (f *IIRFilter) Clone() *IIRFilter {
	out := &IIRFilter{sections: make([]Biquad, len(f.sections))}
	copy(out.sections, f.sections)
	out.Reset()
	return out
}

// Reset clears all section states.
func (f *IIRFilter) Reset() {
	for i := range f.sections {
		f.sections[i].Reset()
	}
}

// Process filters one sample through the full cascade, updating state.
func (f *IIRFilter) Process(x float64) float64 {
	for i := range f.sections {
		x = f.sections[i].Process(x)
	}
	return x
}

// Apply resets the filter and runs x through it, returning a new slice.
func (f *IIRFilter) Apply(x []float64) []float64 {
	return f.ApplyTo(make([]float64, len(x)), x)
}

// ApplyTo resets the filter and runs x through it into dst, which must
// be at least len(x) long. It returns dst[:len(x)] and performs no
// allocation, so a caller-owned arena makes repeated filtering free.
//
// The cascade is evaluated section-by-section over the whole signal
// rather than sample-by-sample through all sections. Each section's
// output at sample n depends only on the previous section's output up
// to n and its own state, so the arithmetic — and therefore the result,
// bit for bit — is identical to Process-per-sample; but one section's
// five coefficients and two state variables stay in registers for an
// entire pass instead of being reloaded from the section slice on every
// sample.
func (f *IIRFilter) ApplyTo(dst, x []float64) []float64 {
	f.Reset()
	dst = dst[:len(x)]
	copy(dst, x)
	for i := range f.sections {
		s := &f.sections[i]
		b0, b1, b2 := s.B0, s.B1, s.B2
		a1, a2 := s.A1, s.A2
		z1, z2 := s.z1, s.z2
		for n, v := range dst {
			y := b0*v + z1
			z1 = b1*v - a1*y + z2
			z2 = b2*v - a2*y
			dst[n] = y
		}
		s.z1, s.z2 = z1, z2
	}
	return dst
}

// FiltFilt applies the filter forward and then backward, yielding a
// zero-phase response with twice the effective order. The filter state
// is reset before each pass.
func (f *IIRFilter) FiltFilt(x []float64) []float64 {
	fwd := f.Apply(x)
	// Reverse, filter, reverse again.
	for i, j := 0, len(fwd)-1; i < j; i, j = i+1, j-1 {
		fwd[i], fwd[j] = fwd[j], fwd[i]
	}
	back := f.Apply(fwd)
	for i, j := 0, len(back)-1; i < j; i, j = i+1, j-1 {
		back[i], back[j] = back[j], back[i]
	}
	return back
}

// butterworthQs returns the section Q factors for an order-n Butterworth
// prototype: one entry per conjugate pole pair. hasReal reports whether
// an additional real pole (first-order section) is required (odd order).
func butterworthQs(order int) (qs []float64, hasReal bool) {
	pairs := order / 2
	qs = make([]float64, 0, pairs)
	for k := 0; k < pairs; k++ {
		// Pole pair at angle theta from the imaginary axis; the angle
		// from the negative real axis is pi/2 - theta, so
		// Q = 1/(2 cos(pi/2 - theta)) = 1/(2 sin theta). Order 2 gives
		// the familiar Q = 0.7071.
		theta := math.Pi * float64(2*k+1) / float64(2*order)
		qs = append(qs, 1/(2*math.Sin(theta)))
	}
	return qs, order%2 == 1
}

// rbjLowPass returns an RBJ-cookbook low-pass biquad (the bilinear
// transform of the analog prototype with frequency prewarping).
func rbjLowPass(fc, fs, q float64) Biquad {
	w0 := 2 * math.Pi * fc / fs
	cw, sw := math.Cos(w0), math.Sin(w0)
	alpha := sw / (2 * q)
	a0 := 1 + alpha
	return Biquad{
		B0: (1 - cw) / 2 / a0,
		B1: (1 - cw) / a0,
		B2: (1 - cw) / 2 / a0,
		A1: -2 * cw / a0,
		A2: (1 - alpha) / a0,
	}
}

// rbjHighPass returns an RBJ-cookbook high-pass biquad.
func rbjHighPass(fc, fs, q float64) Biquad {
	w0 := 2 * math.Pi * fc / fs
	cw, sw := math.Cos(w0), math.Sin(w0)
	alpha := sw / (2 * q)
	a0 := 1 + alpha
	return Biquad{
		B0: (1 + cw) / 2 / a0,
		B1: -(1 + cw) / a0,
		B2: (1 + cw) / 2 / a0,
		A1: -2 * cw / a0,
		A2: (1 - alpha) / a0,
	}
}

// firstOrderLowPass returns a one-pole/one-zero low-pass section from
// the bilinear transform of 1/(s/wc+1), expressed as a degenerate
// biquad.
func firstOrderLowPass(fc, fs float64) Biquad {
	k := math.Tan(math.Pi * fc / fs)
	a0 := k + 1
	return Biquad{
		B0: k / a0,
		B1: k / a0,
		A1: (k - 1) / a0,
	}
}

// firstOrderHighPass returns a one-pole/one-zero high-pass section.
func firstOrderHighPass(fc, fs float64) Biquad {
	k := math.Tan(math.Pi * fc / fs)
	a0 := k + 1
	return Biquad{
		B0: 1 / a0,
		B1: -1 / a0,
		A1: (k - 1) / a0,
	}
}

func validateCutoff(fc, fs float64) error {
	if fs <= 0 {
		return fmt.Errorf("dsp: sample rate %g must be positive", fs)
	}
	if fc <= 0 || fc >= fs/2 {
		return fmt.Errorf("dsp: cutoff %g Hz outside (0, %g) at fs=%g", fc, fs/2, fs)
	}
	return nil
}

// NewButterworthLowPass designs an order-n Butterworth low-pass filter
// with -3 dB point fc at sample rate fs.
func NewButterworthLowPass(order int, fc, fs float64) (*IIRFilter, error) {
	if order < 1 {
		return nil, fmt.Errorf("dsp: filter order %d must be >= 1", order)
	}
	if err := validateCutoff(fc, fs); err != nil {
		return nil, err
	}
	qs, hasReal := butterworthQs(order)
	f := &IIRFilter{}
	for _, q := range qs {
		f.sections = append(f.sections, rbjLowPass(fc, fs, q))
	}
	if hasReal {
		f.sections = append(f.sections, firstOrderLowPass(fc, fs))
	}
	return f, nil
}

// NewButterworthHighPass designs an order-n Butterworth high-pass
// filter with -3 dB point fc at sample rate fs.
func NewButterworthHighPass(order int, fc, fs float64) (*IIRFilter, error) {
	if order < 1 {
		return nil, fmt.Errorf("dsp: filter order %d must be >= 1", order)
	}
	if err := validateCutoff(fc, fs); err != nil {
		return nil, err
	}
	qs, hasReal := butterworthQs(order)
	f := &IIRFilter{}
	for _, q := range qs {
		f.sections = append(f.sections, rbjHighPass(fc, fs, q))
	}
	if hasReal {
		f.sections = append(f.sections, firstOrderHighPass(fc, fs))
	}
	return f, nil
}

// NewButterworthBandPass designs a band-pass filter as a cascade of an
// order-n Butterworth high-pass at lo and an order-n Butterworth
// low-pass at hi. This is the structure behind HeadTalk's preprocessing
// stage (paper §III: "fifth-order Butterworth bandpass filter to keep
// the audio within the frequency range of 100~16000 Hz").
func NewButterworthBandPass(order int, lo, hi, fs float64) (*IIRFilter, error) {
	if lo >= hi {
		return nil, fmt.Errorf("dsp: band edges inverted: lo=%g hi=%g", lo, hi)
	}
	hp, err := NewButterworthHighPass(order, lo, fs)
	if err != nil {
		return nil, err
	}
	lp, err := NewButterworthLowPass(order, hi, fs)
	if err != nil {
		return nil, err
	}
	return &IIRFilter{sections: append(hp.sections, lp.sections...)}, nil
}

// FIRLowPass designs a windowed-sinc (Hamming) linear-phase low-pass
// FIR filter with the given number of taps and cutoff frequency fc at
// sample rate fs. Taps is forced odd so the filter has integer group
// delay of (taps-1)/2 samples.
func FIRLowPass(taps int, fc, fs float64) []float64 {
	if taps < 3 {
		taps = 3
	}
	if taps%2 == 0 {
		taps++
	}
	h := make([]float64, taps)
	mid := (taps - 1) / 2
	wc := 2 * math.Pi * fc / fs
	win := Hamming.Coefficients(taps)
	var sum float64
	for i := 0; i < taps; i++ {
		n := float64(i - mid)
		var v float64
		if i == mid {
			v = wc / math.Pi
		} else {
			v = math.Sin(wc*n) / (math.Pi * n)
		}
		h[i] = v * win[i]
		sum += h[i]
	}
	// Normalize to unity DC gain.
	for i := range h {
		h[i] /= sum
	}
	return h
}

// FIRFilter convolves x with the FIR taps h and returns a slice the
// same length as x (the filter's leading transient is included; group
// delay is not compensated).
func FIRFilter(x, h []float64) []float64 {
	out := make([]float64, len(x))
	for i := range x {
		var acc float64
		for j, tap := range h {
			if k := i - j; k >= 0 {
				acc += tap * x[k]
			}
		}
		out[i] = acc
	}
	return out
}
