package dsp

import (
	"fmt"
	"math"
)

// Window identifies a window function.
type Window int

// Supported window functions.
const (
	Rectangular Window = iota
	Hann
	Hamming
	Blackman
)

// String returns the window's name.
func (w Window) String() string {
	switch w {
	case Rectangular:
		return "rectangular"
	case Hann:
		return "hann"
	case Hamming:
		return "hamming"
	case Blackman:
		return "blackman"
	default:
		return "unknown"
	}
}

// Coefficients returns the n window coefficients for w. Periodic
// (DFT-even) form is used, which is the conventional choice for
// spectral analysis with overlapping frames.
func (w Window) Coefficients(n int) []float64 {
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	if n == 1 {
		out[0] = 1
		return out
	}
	for i := 0; i < n; i++ {
		x := 2 * math.Pi * float64(i) / float64(n)
		switch w {
		case Rectangular:
			out[i] = 1
		case Hann:
			out[i] = 0.5 - 0.5*math.Cos(x)
		case Hamming:
			out[i] = 0.54 - 0.46*math.Cos(x)
		case Blackman:
			out[i] = 0.42 - 0.5*math.Cos(x) + 0.08*math.Cos(2*x)
		default:
			out[i] = 1
		}
	}
	return out
}

// ApplyWindow multiplies x element-wise by the window coefficients and
// returns a new slice. A length mismatch is reported as an error, not a
// panic: windowing sits on the serving hot path, where a panic would
// defeat the worker-isolation guarantees of internal/serve.
func ApplyWindow(x, window []float64) ([]float64, error) {
	if len(x) != len(window) {
		return nil, fmt.Errorf("dsp: window length %d != frame length %d", len(window), len(x))
	}
	out := make([]float64, len(x))
	for i := range x {
		out[i] = x[i] * window[i]
	}
	return out, nil
}
