package dsp

import (
	"math"
	"testing"
)

func TestDecimatePreservesTone(t *testing.T) {
	const (
		from = 48000.0
		to   = 16000.0
	)
	x := sine(1000, from, 9600)
	y, err := Decimate(x, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(y) != 3200 {
		t.Fatalf("decimated length %d, want 3200", len(y))
	}
	// The tone should survive at the same physical frequency.
	mags := Magnitude(HalfSpectrum(y[:3072]))
	peakFreq := BinFreq(ArgMax(mags), 3072, to)
	if math.Abs(peakFreq-1000) > to/3072*2 {
		t.Errorf("tone moved to %g Hz after decimation", peakFreq)
	}
	// Amplitude roughly preserved (skip the filter transient).
	if r := RMS(y[500:]) / RMS(x[1500:]); r < 0.9 || r > 1.1 {
		t.Errorf("amplitude ratio %g after decimation", r)
	}
}

func TestDecimateRemovesAlias(t *testing.T) {
	// A 20 kHz tone must NOT alias into the 16 kHz output band.
	x := sine(20000, 48000, 9600)
	y, err := Decimate(x, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r := RMS(y[500:]); r > 0.05 {
		t.Errorf("aliased energy RMS %g, want ~0", r)
	}
}

func TestDecimateValidation(t *testing.T) {
	if _, err := Decimate([]float64{1}, 0); err == nil {
		t.Error("expected error for factor 0")
	}
	y, err := Decimate([]float64{1, 2, 3}, 1)
	if err != nil || len(y) != 3 {
		t.Error("factor 1 should copy")
	}
}

func TestResampleIdentity(t *testing.T) {
	x := []float64{1, 2, 3}
	y, err := Resample(x, 48000, 48000)
	if err != nil {
		t.Fatal(err)
	}
	y[0] = 99
	if x[0] == 99 {
		t.Error("Resample must return a copy at identical rates")
	}
}

func TestResampleArbitraryRatio(t *testing.T) {
	x := sine(440, 44100, 44100/2)
	y, err := Resample(x, 44100, 16000)
	if err != nil {
		t.Fatal(err)
	}
	wantLen := int(float64(len(x)) * 16000 / 44100)
	if len(y) != wantLen {
		t.Fatalf("length %d, want %d", len(y), wantLen)
	}
	mags := Magnitude(HalfSpectrum(y[:8000]))
	peakFreq := BinFreq(ArgMax(mags), 8000, 16000)
	if math.Abs(peakFreq-440) > 10 {
		t.Errorf("tone at %g Hz after resample, want ~440", peakFreq)
	}
}

func TestResampleUpsample(t *testing.T) {
	x := sine(440, 16000, 1600)
	y, err := Resample(x, 16000, 48000)
	if err != nil {
		t.Fatal(err)
	}
	if len(y) != 4800 {
		t.Fatalf("length %d, want 4800", len(y))
	}
}

func TestResampleValidation(t *testing.T) {
	if _, err := Resample([]float64{1}, 0, 16000); err == nil {
		t.Error("expected error for zero source rate")
	}
	if _, err := Resample([]float64{1}, 48000, -1); err == nil {
		t.Error("expected error for negative target rate")
	}
}
