package dsp

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanStdRMS(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	if got := Mean(x); got != 2.5 {
		t.Errorf("Mean = %g, want 2.5", got)
	}
	if got := Std(x); !almostEq(got, math.Sqrt(1.25), 1e-12) {
		t.Errorf("Std = %g", got)
	}
	if got := RMS(x); !almostEq(got, math.Sqrt(7.5), 1e-12) {
		t.Errorf("RMS = %g", got)
	}
	if got := SampleStd(x); !almostEq(got, math.Sqrt(5.0/3), 1e-12) {
		t.Errorf("SampleStd = %g", got)
	}
}

func TestEmptyInputs(t *testing.T) {
	if Mean(nil) != 0 || Std(nil) != 0 || RMS(nil) != 0 || MAD(nil) != 0 {
		t.Error("empty-input statistics should be 0")
	}
	if ArgMax(nil) != -1 {
		t.Error("ArgMax(nil) should be -1")
	}
	if !math.IsInf(Max(nil), -1) || !math.IsInf(Min(nil), 1) {
		t.Error("Max/Min of empty input should be ∓Inf")
	}
	if Median(nil) != 0 {
		t.Error("Median(nil) should be 0")
	}
}

func TestMinMaxArgMax(t *testing.T) {
	x := []float64{3, -7, 5, 5, 0}
	if Max(x) != 5 || Min(x) != -7 || MaxAbs(x) != 7 {
		t.Errorf("Max/Min/MaxAbs wrong: %g %g %g", Max(x), Min(x), MaxAbs(x))
	}
	if ArgMax(x) != 2 {
		t.Errorf("ArgMax = %d, want first maximum index 2", ArgMax(x))
	}
}

func TestSkewnessKurtosisGaussian(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	x := make([]float64, 200000)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	if s := Skewness(x); math.Abs(s) > 0.05 {
		t.Errorf("Gaussian skewness = %g, want ~0", s)
	}
	if k := Kurtosis(x); math.Abs(k-3) > 0.1 {
		t.Errorf("Gaussian kurtosis = %g, want ~3", k)
	}
}

func TestSkewnessSign(t *testing.T) {
	rightSkewed := []float64{0, 0, 0, 0, 0, 10}
	if Skewness(rightSkewed) <= 0 {
		t.Error("right-skewed data should have positive skewness")
	}
}

func TestConstantInputMoments(t *testing.T) {
	x := []float64{2, 2, 2, 2}
	if Skewness(x) != 0 || Kurtosis(x) != 0 {
		t.Error("constant input should yield zero higher moments")
	}
}

func TestMedianPercentile(t *testing.T) {
	x := []float64{5, 1, 3}
	if Median(x) != 3 {
		t.Errorf("Median = %g, want 3", Median(x))
	}
	// Percentile must not modify its input.
	if x[0] != 5 || x[1] != 1 || x[2] != 3 {
		t.Error("Percentile modified input")
	}
	y := []float64{0, 10}
	if got := Percentile(y, 50); got != 5 {
		t.Errorf("50th percentile of {0,10} = %g, want 5", got)
	}
	if Percentile(y, 0) != 0 || Percentile(y, 100) != 10 {
		t.Error("percentile endpoints wrong")
	}
}

func TestMAD(t *testing.T) {
	x := []float64{1, 1, 3, 3}
	if got := MAD(x); got != 1 {
		t.Errorf("MAD = %g, want 1", got)
	}
}

func TestNormalize(t *testing.T) {
	x := []float64{0.5, -2, 1}
	y := Normalize(x)
	if MaxAbs(y) != 1 {
		t.Errorf("normalized peak = %g, want 1", MaxAbs(y))
	}
	if x[1] != -2 {
		t.Error("Normalize modified input")
	}
	zeros := Normalize([]float64{0, 0})
	if zeros[0] != 0 || zeros[1] != 0 {
		t.Error("silent input should stay silent")
	}
}

func TestZScore(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	z := ZScore(x)
	if !almostEq(Mean(z), 0, 1e-12) || !almostEq(Std(z), 1, 1e-12) {
		t.Errorf("ZScore mean=%g std=%g", Mean(z), Std(z))
	}
	c := ZScore([]float64{7, 7})
	if c[0] != 0 || c[1] != 0 {
		t.Error("constant input should z-score to zeros")
	}
}

func TestZScoreProperty(t *testing.T) {
	f := func(raw [16]float64) bool {
		x := make([]float64, len(raw))
		varies := false
		for i, v := range raw {
			x[i] = clampQuick(v)
			if x[i] != x[0] {
				varies = true
			}
		}
		z := ZScore(x)
		if !varies {
			return Mean(z) == 0
		}
		return almostEq(Mean(z), 0, 1e-6) && almostEq(Std(z), 1, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTopPeaks(t *testing.T) {
	x := []float64{0, 3, 0, 5, 0, 1, 0}
	peaks := TopPeaks(x, 2)
	if len(peaks) != 2 {
		t.Fatalf("got %d peaks, want 2", len(peaks))
	}
	if peaks[0].Index != 3 || peaks[0].Value != 5 {
		t.Errorf("top peak = %+v, want index 3 value 5", peaks[0])
	}
	if peaks[1].Index != 1 || peaks[1].Value != 3 {
		t.Errorf("second peak = %+v", peaks[1])
	}
}

func TestTopPeaksEdgesExcluded(t *testing.T) {
	// Monotone data has no interior local maximum.
	if peaks := TopPeaks([]float64{1, 2, 3, 4}, 3); len(peaks) != 0 {
		t.Errorf("monotone data yielded %d peaks", len(peaks))
	}
}

func TestTopPeaksFewerThanK(t *testing.T) {
	x := []float64{0, 1, 0}
	if peaks := TopPeaks(x, 5); len(peaks) != 1 {
		t.Errorf("got %d peaks, want 1", len(peaks))
	}
}

func TestZScoreInto(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	want := ZScore(x)
	dst := make([]float64, 0, 8)
	got := ZScoreInto(dst, x)
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("ZScoreInto[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	// Constant input zeroes a previously dirty dst.
	dirty := []float64{9, 9, 9}
	out := ZScoreInto(dirty, []float64{4, 4, 4})
	for i, v := range out {
		if v != 0 {
			t.Fatalf("constant input dst[%d] = %g, want 0", i, v)
		}
	}
	// Aliasing dst == x is allowed.
	alias := []float64{1, 2, 3, 4, 5}
	ZScoreInto(alias, alias)
	for i := range want {
		if math.Abs(alias[i]-want[i]) > 1e-12 {
			t.Fatalf("aliased ZScoreInto[%d] = %g, want %g", i, alias[i], want[i])
		}
	}
	// Steady state with a sized dst performs no allocations.
	buf := make([]float64, len(x))
	if avg := testing.AllocsPerRun(100, func() { ZScoreInto(buf, x) }); avg != 0 {
		t.Errorf("ZScoreInto steady state allocates %.1f times per op, want 0", avg)
	}
}
