package dsp

import (
	"math"
	"testing"
)

// toneGain measures the steady-state amplitude gain of filter f for a
// sinusoid at freq Hz.
func toneGain(f *IIRFilter, freq, fs float64) float64 {
	n := int(fs) // one second
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * freq * float64(i) / fs)
	}
	y := f.Apply(x)
	// Skip the transient, compare RMS.
	settle := n / 4
	return RMS(y[settle:]) / RMS(x[settle:])
}

func TestButterworthLowPassResponse(t *testing.T) {
	const fs = 48000.0
	f, err := NewButterworthLowPass(5, 1000, fs)
	if err != nil {
		t.Fatal(err)
	}
	// -3 dB at the cutoff.
	if g := toneGain(f, 1000, fs); math.Abs(20*math.Log10(g)-(-3)) > 0.7 {
		t.Errorf("cutoff gain = %.2f dB, want ~-3 dB", 20*math.Log10(g))
	}
	// Near-unity in the passband.
	if g := toneGain(f, 100, fs); g < 0.98 || g > 1.02 {
		t.Errorf("passband gain = %g, want ~1", g)
	}
	// 5th order: -30 dB/octave; one octave above cutoff should be
	// below -27 dB.
	if g := toneGain(f, 2000, fs); 20*math.Log10(g) > -27 {
		t.Errorf("stopband gain at 2 kHz = %.2f dB, want < -27 dB", 20*math.Log10(g))
	}
}

func TestButterworthHighPassResponse(t *testing.T) {
	const fs = 48000.0
	f, err := NewButterworthHighPass(5, 1000, fs)
	if err != nil {
		t.Fatal(err)
	}
	if g := toneGain(f, 1000, fs); math.Abs(20*math.Log10(g)-(-3)) > 0.7 {
		t.Errorf("cutoff gain = %.2f dB, want ~-3 dB", 20*math.Log10(g))
	}
	if g := toneGain(f, 8000, fs); g < 0.98 || g > 1.02 {
		t.Errorf("passband gain = %g, want ~1", g)
	}
	if g := toneGain(f, 500, fs); 20*math.Log10(g) > -27 {
		t.Errorf("stopband gain at 500 Hz = %.2f dB, want < -27 dB", 20*math.Log10(g))
	}
}

func TestButterworthBandPassPreprocessing(t *testing.T) {
	// The paper's preprocessing filter: 5th order, 100–16000 Hz at
	// 48 kHz.
	const fs = 48000.0
	f, err := NewButterworthBandPass(5, 100, 16000, fs)
	if err != nil {
		t.Fatal(err)
	}
	if g := toneGain(f, 1000, fs); g < 0.95 || g > 1.05 {
		t.Errorf("mid-band gain = %g, want ~1", g)
	}
	if g := toneGain(f, 30, fs); 20*math.Log10(g) > -20 {
		t.Errorf("sub-band gain at 30 Hz = %.2f dB, want strongly attenuated", 20*math.Log10(g))
	}
	if g := toneGain(f, 22000, fs); 20*math.Log10(g) > -8 {
		t.Errorf("super-band gain at 22 kHz = %.2f dB, want attenuated", 20*math.Log10(g))
	}
}

func TestButterworthOrderSections(t *testing.T) {
	for order := 1; order <= 8; order++ {
		f, err := NewButterworthLowPass(order, 1000, 48000)
		if err != nil {
			t.Fatal(err)
		}
		want := (order + 1) / 2
		if f.Sections() != want {
			t.Errorf("order %d: %d sections, want %d", order, f.Sections(), want)
		}
	}
}

func TestFilterValidation(t *testing.T) {
	cases := []struct {
		name string
		fn   func() error
	}{
		{"zero order", func() error { _, err := NewButterworthLowPass(0, 100, 48000); return err }},
		{"negative cutoff", func() error { _, err := NewButterworthLowPass(2, -5, 48000); return err }},
		{"cutoff above Nyquist", func() error { _, err := NewButterworthLowPass(2, 30000, 48000); return err }},
		{"zero sample rate", func() error { _, err := NewButterworthHighPass(2, 100, 0); return err }},
		{"inverted band", func() error { _, err := NewButterworthBandPass(2, 5000, 100, 48000); return err }},
	}
	for _, tc := range cases {
		if tc.fn() == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestFiltFiltZeroPhase(t *testing.T) {
	const fs = 8000.0
	f, err := NewButterworthLowPass(3, 1000, fs)
	if err != nil {
		t.Fatal(err)
	}
	// A passband sinusoid should come back with (almost) no phase
	// shift: the cross-correlation peak of input and output at lag 0.
	n := 4000
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * 200 * float64(i) / fs)
	}
	y := f.FiltFilt(x)
	r := CrossCorrelate(x[500:n-500], y[500:n-500], 10)
	if peak := ArgMax(r) - 10; peak != 0 {
		t.Errorf("filtfilt introduced a delay of %d samples", peak)
	}
}

func TestFilterApplyResetsState(t *testing.T) {
	f, err := NewButterworthLowPass(4, 1000, 48000)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 512)
	x[0] = 1
	first := f.Apply(x)
	second := f.Apply(x)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("Apply is not stateless: sample %d differs", i)
		}
	}
}

func TestFIRLowPass(t *testing.T) {
	const fs = 8000.0
	h := FIRLowPass(63, 1000, fs)
	if len(h)%2 == 0 {
		t.Fatalf("tap count %d should be odd", len(h))
	}
	// DC gain 1 by construction.
	var sum float64
	for _, v := range h {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("DC gain %g, want 1", sum)
	}
	// Stopband tone strongly attenuated.
	n := 4000
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * 3000 * float64(i) / fs)
	}
	y := FIRFilter(x, h)
	if g := RMS(y[500:]) / RMS(x[500:]); 20*math.Log10(g) > -30 {
		t.Errorf("FIR stopband gain %.2f dB, want < -30", 20*math.Log10(g))
	}
}

func TestFIRLowPassMinimumTaps(t *testing.T) {
	h := FIRLowPass(1, 1000, 8000)
	if len(h) < 3 {
		t.Fatalf("tap floor not applied: got %d taps", len(h))
	}
}

func TestBiquadImpulseDecay(t *testing.T) {
	// A stable filter's impulse response must decay.
	f, err := NewButterworthLowPass(5, 2000, 48000)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 48000)
	x[0] = 1
	y := f.Apply(x)
	head := RMS(y[:1000])
	tail := RMS(y[40000:])
	if tail > head*1e-6 {
		t.Errorf("impulse response does not decay: head RMS %g, tail RMS %g", head, tail)
	}
}
