package dsp

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestConvolveIdentity(t *testing.T) {
	x := []float64{1, 2, 3}
	got := Convolve(x, []float64{1})
	for i, v := range x {
		if got[i] != v {
			t.Fatalf("identity convolution mismatch at %d", i)
		}
	}
}

func TestConvolveKnown(t *testing.T) {
	got := Convolve([]float64{1, 2, 3}, []float64{0, 1})
	want := []float64{0, 1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("mismatch at %d: %g vs %g", i, got[i], want[i])
		}
	}
}

func TestConvolveDirectMatchesFFT(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	x := make([]float64, 300)
	h := make([]float64, 200)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for i := range h {
		h[i] = rng.NormFloat64()
	}
	direct := convolveDirect(x, h)
	fft := convolveFFT(x, h)
	if len(direct) != len(fft) {
		t.Fatalf("length mismatch %d vs %d", len(direct), len(fft))
	}
	for i := range direct {
		if math.Abs(direct[i]-fft[i]) > 1e-8 {
			t.Fatalf("mismatch at %d: %g vs %g", i, direct[i], fft[i])
		}
	}
}

func TestConvolveEmpty(t *testing.T) {
	if Convolve(nil, []float64{1}) != nil {
		t.Error("empty x should give nil")
	}
	if Convolve([]float64{1}, nil) != nil {
		t.Error("empty h should give nil")
	}
}

func TestConvolveSparse(t *testing.T) {
	x := []float64{1, 2, 3}
	dst := make([]float64, 8)
	ConvolveSparse(dst, x, []SparseTap{{Delay: 0, Gain: 1}, {Delay: 2, Gain: 0.5}})
	want := []float64{1, 2, 3.5, 1, 1.5, 0, 0, 0}
	for i := range want {
		if math.Abs(dst[i]-want[i]) > 1e-12 {
			t.Fatalf("mismatch at %d: %g vs %g", i, dst[i], want[i])
		}
	}
}

func TestConvolveSparseTruncates(t *testing.T) {
	dst := make([]float64, 3)
	ConvolveSparse(dst, []float64{1, 1, 1, 1}, []SparseTap{{Delay: 2, Gain: 1}})
	want := []float64{0, 0, 1}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("truncation mismatch at %d", i)
		}
	}
}

func TestConvolveSparseIgnoresInvalidTaps(t *testing.T) {
	dst := make([]float64, 4)
	ConvolveSparse(dst, []float64{1}, []SparseTap{{Delay: -1, Gain: 5}, {Delay: 1, Gain: 0}})
	for i, v := range dst {
		if v != 0 {
			t.Fatalf("invalid taps wrote output at %d: %g", i, v)
		}
	}
}

func TestConvolveSparseAccumulates(t *testing.T) {
	dst := []float64{10, 0}
	ConvolveSparse(dst, []float64{1}, []SparseTap{{Delay: 0, Gain: 2}})
	if dst[0] != 12 {
		t.Fatalf("expected accumulation into dst, got %g", dst[0])
	}
}

func TestCrossCorrelateDelayDetection(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	n := 1000
	const delay = 7
	a := make([]float64, n)
	b := make([]float64, n)
	src := make([]float64, n)
	for i := range src {
		src[i] = rng.NormFloat64()
	}
	copy(a[delay:], src[:n-delay]) // a = src delayed by 7
	copy(b, src)
	r := CrossCorrelate(a, b, 10)
	// r[k] = sum a[n+k] b[n]; a lags b by `delay`, so peak at k = -delay...
	// a[n+k]=src[n+k-delay] matches b[n]=src[n] when k=+delay.
	if peak := ArgMax(r) - 10; peak != delay {
		t.Fatalf("correlation peak at lag %d, want %d", peak, delay)
	}
}
