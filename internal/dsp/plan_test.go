package dsp

import (
	"math"
	"math/cmplx"
	"math/rand/v2"
	"sync"
	"testing"
)

func randReal(n int, rng *rand.Rand) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64()
	}
	return out
}

// TestRadix2TwiddleAccuracy4096 pins the accuracy win from the plan's
// precomputed twiddle tables: the old implementation grew one rounding
// error per butterfly through its running w *= wStep product, so at
// n=4096 its error against the naive DFT was orders of magnitude above
// table lookup. The planned path must stay within 1e-9 absolute — far
// tighter than the old test's 1e-8*n (≈4e-5 at this size).
func TestRadix2TwiddleAccuracy4096(t *testing.T) {
	const n = 4096
	rng := rand.New(rand.NewPCG(21, 22))
	x := randComplex(n, rng)
	got := FFT(x)
	want := naiveDFT(x)
	if err := maxErr(got, want); err > 1e-9 {
		t.Errorf("n=%d: max error %g vs naive DFT, want <= 1e-9", n, err)
	}
}

// TestPlannedMatchesNaiveRandomSizes is the randomized property test of
// the acceptance criteria: planned outputs within 1e-9 of the reference
// for power-of-two sizes and 1e-7 through the cached Bluestein path.
func TestPlannedMatchesNaiveRandomSizes(t *testing.T) {
	rng := rand.New(rand.NewPCG(23, 24))
	pow2 := []int{2, 8, 64, 256, 1024, 4096}
	nonPow2 := []int{3, 5, 12, 100, 384, 1000, 1458}
	for _, n := range pow2 {
		x := randComplex(n, rng)
		if err := maxErr(FFT(x), naiveDFT(x)); err > 1e-9 {
			t.Errorf("pow2 n=%d: max error %g > 1e-9", n, err)
		}
	}
	for _, n := range nonPow2 {
		x := randComplex(n, rng)
		if err := maxErr(FFT(x), naiveDFT(x)); err > 1e-7 {
			t.Errorf("bluestein n=%d: max error %g > 1e-7", n, err)
		}
	}
}

// TestBluesteinCachedPath runs several transforms of the same
// non-power-of-two size back to back so the second and later ones hit
// the cached chirp and pre-transformed kernel, and checks forward
// correctness plus round-trip through the cached inverse.
func TestBluesteinCachedPath(t *testing.T) {
	rng := rand.New(rand.NewPCG(25, 26))
	for _, n := range []int{7, 30, 100, 1000} {
		var firstErr, secondErr float64
		for rep := 0; rep < 3; rep++ {
			x := randComplex(n, rng)
			err := maxErr(FFT(x), naiveDFT(x))
			if rep == 0 {
				firstErr = err
			} else {
				secondErr = err
			}
			if err > 1e-7 {
				t.Errorf("n=%d rep=%d: max error %g > 1e-7", n, rep, err)
			}
			back := IFFT(FFT(x))
			if err := maxErr(x, back); err > 1e-9*float64(n) {
				t.Errorf("n=%d rep=%d: round-trip error %g", n, rep, err)
			}
		}
		// The cached path must not degrade relative to the first call
		// (both go through the same plan; this guards cache poisoning).
		if secondErr > 10*firstErr+1e-12 {
			t.Errorf("n=%d: cached-path error %g much worse than first call %g", n, secondErr, firstErr)
		}
	}
}

// TestRFFTMatchesFullTransform checks the packed real transform against
// the full complex path across even, odd, power-of-two and Bluestein
// sizes.
func TestRFFTMatchesFullTransform(t *testing.T) {
	rng := rand.New(rand.NewPCG(27, 28))
	for _, n := range []int{1, 2, 4, 6, 16, 100, 256, 384, 1000, 1024, 337, 4095} {
		x := randReal(n, rng)
		got := RFFT(nil, x)
		c := make([]complex128, n)
		for i, v := range x {
			c[i] = complex(v, 0)
		}
		want := naiveDFT(c)[:n/2+1]
		tol := 1e-9
		if !IsPow2(n) {
			tol = 1e-7
		}
		for i := range got {
			if d := cmplx.Abs(got[i] - want[i]); d > tol {
				t.Errorf("n=%d bin %d: |%v - %v| = %g > %g", n, i, got[i], want[i], d, tol)
				break
			}
		}
	}
}

// TestIRFFTInvertsRFFT round-trips real signals through the packed
// forward and inverse transforms.
func TestIRFFTInvertsRFFT(t *testing.T) {
	rng := rand.New(rand.NewPCG(29, 30))
	for _, n := range []int{1, 2, 4, 6, 16, 100, 256, 1000, 1024, 337} {
		x := randReal(n, rng)
		spec := RFFT(nil, x)
		back := IRFFT(nil, spec, n)
		for i := range x {
			if math.Abs(x[i]-back[i]) > 1e-8 {
				t.Errorf("n=%d sample %d: %g vs %g", n, i, x[i], back[i])
				break
			}
		}
	}
}

// TestRFFTReusesDst verifies the dst-reusing contract: a buffer with
// enough capacity is written in place and returned.
func TestRFFTReusesDst(t *testing.T) {
	x := randReal(256, rand.New(rand.NewPCG(31, 32)))
	dst := make([]complex128, 256/2+1)
	got := RFFT(dst, x)
	if &got[0] != &dst[0] {
		t.Error("RFFT did not reuse dst")
	}
	rdst := make([]float64, 256)
	back := IRFFT(rdst, got, 256)
	if &back[0] != &rdst[0] {
		t.Error("IRFFT did not reuse dst")
	}
}

// TestInPlaceVariantsMatchAllocating checks FFTInPlace/IFFTInPlace and
// HalfSpectrumInto against their allocating counterparts.
func TestInPlaceVariantsMatchAllocating(t *testing.T) {
	rng := rand.New(rand.NewPCG(33, 34))
	x := randComplex(128, rng)
	want := FFT(x)
	got := append([]complex128{}, x...)
	FFTInPlace(got)
	if err := maxErr(got, want); err > 0 {
		t.Errorf("FFTInPlace differs from FFT by %g", err)
	}
	IFFTInPlace(got)
	if err := maxErr(got, x); err > 1e-12 {
		t.Errorf("IFFTInPlace round-trip error %g", err)
	}

	r := randReal(128, rng)
	half := HalfSpectrum(r)
	into := HalfSpectrumInto(make([]complex128, 0, 65), r)
	if len(into) != len(half) {
		t.Fatalf("HalfSpectrumInto length %d, want %d", len(into), len(half))
	}
	if err := maxErr(into, half); err > 0 {
		t.Errorf("HalfSpectrumInto differs by %g", err)
	}
}

// TestMagnitudePowerInto checks the dst-reusing spectral reductions.
func TestMagnitudePowerInto(t *testing.T) {
	spec := []complex128{3 + 4i, -1, 2i}
	mag := MagnitudeInto(make([]float64, 0, 3), spec)
	pow := PowerInto(make([]float64, 0, 3), spec)
	wantMag := []float64{5, 1, 2}
	wantPow := []float64{25, 1, 4}
	for i := range spec {
		if math.Abs(mag[i]-wantMag[i]) > 1e-12 {
			t.Errorf("mag[%d] = %g, want %g", i, mag[i], wantMag[i])
		}
		if math.Abs(pow[i]-wantPow[i]) > 1e-12 {
			t.Errorf("pow[%d] = %g, want %g", i, pow[i], wantPow[i])
		}
	}
	// Growing path.
	if got := MagnitudeInto(nil, spec); len(got) != 3 {
		t.Errorf("MagnitudeInto(nil) length %d", len(got))
	}
}

// TestPlanConcurrentUse hammers one plan (and the plan cache) from many
// goroutines; run under -race via `make check`, this pins the
// plans-immutable-after-build concurrency contract.
func TestPlanConcurrentUse(t *testing.T) {
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, seed+1))
			for it := 0; it < 20; it++ {
				for _, n := range []int{64, 100, 1024} {
					x := randReal(n, rng)
					spec := RFFT(nil, x)
					back := IRFFT(nil, spec, n)
					for i := range x {
						if math.Abs(x[i]-back[i]) > 1e-8 {
							t.Errorf("n=%d: concurrent round-trip mismatch", n)
							return
						}
					}
				}
			}
		}(uint64(w))
	}
	wg.Wait()
}

// TestSTFTPreallocatedLayout checks STFT's flat-backing frames against
// per-frame HalfSpectrum, and that writing one frame cannot corrupt its
// neighbor (full-slice-expression capacity).
func TestSTFTPreallocatedLayout(t *testing.T) {
	rng := rand.New(rand.NewPCG(35, 36))
	x := randReal(4096, rng)
	frames, err := STFT(x, 512, 256, Hann)
	if err != nil {
		t.Fatal(err)
	}
	wantFrames := (4096-512)/256 + 1
	if len(frames) != wantFrames {
		t.Fatalf("%d frames, want %d", len(frames), wantFrames)
	}
	win := Hann.Coefficients(512)
	for fi, frame := range frames {
		if len(frame) != 257 {
			t.Fatalf("frame %d has %d bins, want 257", fi, len(frame))
		}
		start := fi * 256
		windowed := make([]float64, 512)
		for i := range windowed {
			windowed[i] = x[start+i] * win[i]
		}
		want := HalfSpectrum(windowed)
		if err := maxErr(frame, want); err > 1e-9 {
			t.Errorf("frame %d differs from HalfSpectrum by %g", fi, err)
		}
		if extra := cap(frame) - len(frame); extra != 0 {
			t.Errorf("frame %d has %d bins of spare capacity into its neighbor", fi, extra)
		}
	}
}

// --- allocation-regression gates ---

// The alloc gates pin steady-state allocation counts after the pools
// and dst-reuse land. They are set at the improved level (with a little
// headroom only where the runtime itself may allocate), not at zero
// across the board: paths that hand back fresh result slices keep
// those allocations by design.

// TestAllocsRFFTSteadyState: with a reused dst and a cached plan, the
// packed power-of-two real transform performs no allocations at all.
func TestAllocsRFFTSteadyState(t *testing.T) {
	x := randReal(1024, rand.New(rand.NewPCG(37, 38)))
	dst := make([]complex128, 513)
	p := Plan(1024)
	p.RFFT(dst, x) // warm the plan
	if avg := testing.AllocsPerRun(100, func() {
		p.RFFT(dst, x)
	}); avg != 0 {
		t.Errorf("RFFT steady state allocates %.1f times per op, want 0", avg)
	}
	rdst := make([]float64, 1024)
	p.IRFFT(rdst, dst)
	// IRFFT's repack scratch comes from the plan pool; steady state may
	// touch the pool's pointer box but must not rebuild buffers.
	if avg := testing.AllocsPerRun(100, func() {
		p.IRFFT(rdst, dst)
	}); avg > 1 {
		t.Errorf("IRFFT steady state allocates %.1f times per op, want <= 1", avg)
	}
}

// TestAllocsSTFTFrame gates the per-frame allocation rate of STFT: the
// flat backing plus scratch amortize to ~1 allocation per frame, down
// from 4+ (window copy, complex widening, spectrum, append growth).
func TestAllocsSTFTFrame(t *testing.T) {
	x := randReal(48000, rand.New(rand.NewPCG(39, 40)))
	if _, err := STFT(x, 1024, 512, Hann); err != nil {
		t.Fatal(err)
	}
	frames := (48000-1024)/512 + 1
	avg := testing.AllocsPerRun(10, func() {
		if _, err := STFT(x, 1024, 512, Hann); err != nil {
			t.Fatal(err)
		}
	})
	perFrame := avg / float64(frames)
	if perFrame > 1 {
		t.Errorf("STFT allocates %.2f times per frame (%.0f total / %d frames), want <= 1", perFrame, avg, frames)
	}
}
