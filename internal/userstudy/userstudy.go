// Package userstudy reproduces the analysis of the paper's 20-person
// usability study (§V): the post-study survey tallies of Table V and
// the System Usability Scale scoring with 95% confidence intervals.
// The study itself cannot be re-run offline, so the published response
// counts are embedded as data and the full analysis pipeline (SUS
// scoring, interval computation, takeaway percentages) is implemented
// and verified against the paper's reported numbers.
package userstudy

import (
	"fmt"
	"math"
)

// SurveyQuestion is one Table V row: the question plus labeled
// response counts in presentation order.
type SurveyQuestion struct {
	Question  string
	Options   []string
	Counts    []int
	SkipLabel string // label that denotes a skipped/N-A answer, if any
}

// TableV returns the paper's post-study survey responses.
func TableV() []SurveyQuestion {
	return []SurveyQuestion{
		{
			Question: "How many home voice assistants do you have at home?",
			Options:  []string{"0", "1", "2", "above 2"},
			Counts:   []int{5, 12, 2, 1},
		},
		{
			Question:  "How often do you face the VA when you are interacting with the VA (if you have one)?",
			Options:   []string{"N/A", "Very less", "Less", "Often", "Very often"},
			Counts:    []int{5, 1, 4, 6, 4},
			SkipLabel: "N/A",
		},
		{
			Question: "How easy was it to use HeadTalk compared with existing privacy controls?",
			Options:  []string{"Extremely easy", "Somewhat easy", "Neither easy nor difficult", "Somewhat difficult", "Extremely difficult"},
			Counts:   []int{10, 9, 0, 1, 0},
		},
		{
			Question: "Would you deploy HeadTalk on your voice assistant?",
			Options:  []string{"Definitely yes", "Probably yes", "Might or might not", "Probably not", "Definitely not"},
			Counts:   []int{7, 7, 5, 0, 1},
		},
		{
			Question: "Compare HeadTalk with the existing privacy control.",
			Options:  []string{"Much better", "Somewhat better", "About the same", "Somewhat worse", "Much worse"},
			Counts:   []int{9, 5, 5, 0, 1},
		},
	}
}

// Respondents returns the total respondent count for a question.
func (q SurveyQuestion) Respondents() int {
	total := 0
	for _, c := range q.Counts {
		total += c
	}
	return total
}

// TopTwoFraction returns the fraction of non-skipped respondents who
// picked one of the first two (most favorable) options. Used for the
// paper's takeaways (95% found it easy, 70% would deploy, ~70% found
// it better).
func (q SurveyQuestion) TopTwoFraction() (float64, error) {
	if len(q.Counts) < 2 {
		return 0, fmt.Errorf("userstudy: question %q has fewer than two options", q.Question)
	}
	num, denom, seen := 0, 0, 0
	for i, c := range q.Counts {
		if q.SkipLabel != "" && q.Options[i] == q.SkipLabel {
			continue
		}
		denom += c
		if seen < 2 {
			num += c
		}
		seen++
	}
	if denom == 0 {
		return 0, fmt.Errorf("userstudy: question %q has no substantive responses", q.Question)
	}
	return float64(num) / float64(denom), nil
}

// SUSResponse is one participant's answers to the 10 SUS items on a
// 1–5 Likert scale (item order follows Brooke [16]: odd items
// positive, even items negative).
type SUSResponse [10]int

// Score returns the participant's SUS score (0–100): odd items
// contribute (answer-1), even items (5-answer), total scaled by 2.5.
func (r SUSResponse) Score() (float64, error) {
	var total float64
	for i, a := range r {
		if a < 1 || a > 5 {
			return 0, fmt.Errorf("userstudy: SUS item %d answer %d outside 1..5", i+1, a)
		}
		if i%2 == 0 { // items 1,3,5,7,9
			total += float64(a - 1)
		} else { // items 2,4,6,8,10
			total += float64(5 - a)
		}
	}
	return total * 2.5, nil
}

// SUSSummary is a scored questionnaire set.
type SUSSummary struct {
	Mean float64
	// CI95 is the half-width of the 95% confidence interval of the
	// mean.
	CI95 float64
	N    int
}

// AboveAverage reports whether the mean clears the conventional SUS
// benchmark of 68.
func (s SUSSummary) AboveAverage() bool { return s.Mean > 68 }

// String formats the summary the way the paper reports it.
func (s SUSSummary) String() string {
	return fmt.Sprintf("%.2f ± %.2f (n=%d)", s.Mean, s.CI95, s.N)
}

// ScoreAll computes the SUS summary for a set of responses.
func ScoreAll(responses []SUSResponse) (SUSSummary, error) {
	if len(responses) == 0 {
		return SUSSummary{}, fmt.Errorf("userstudy: no SUS responses")
	}
	scores := make([]float64, len(responses))
	for i, r := range responses {
		s, err := r.Score()
		if err != nil {
			return SUSSummary{}, fmt.Errorf("userstudy: response %d: %w", i, err)
		}
		scores[i] = s
	}
	var mean float64
	for _, s := range scores {
		mean += s
	}
	mean /= float64(len(scores))
	var varsum float64
	for _, s := range scores {
		d := s - mean
		varsum += d * d
	}
	ci := 0.0
	if len(scores) > 1 {
		std := math.Sqrt(varsum / float64(len(scores)-1))
		ci = 1.96 * std / math.Sqrt(float64(len(scores)))
	}
	return SUSSummary{Mean: mean, CI95: ci, N: len(scores)}, nil
}

// PaperSUS returns the paper's reported SUS results for HeadTalk and
// the existing mute-button control.
func PaperSUS() (headTalk, existing SUSSummary) {
	return SUSSummary{Mean: 77.38, CI95: 6.26, N: 20},
		SUSSummary{Mean: 74.75, CI95: 8.12, N: 20}
}
