package userstudy

import (
	"math"
	"testing"
)

func TestTableVTotals(t *testing.T) {
	// Every question was answered by all 20 participants.
	for _, q := range TableV() {
		if got := q.Respondents(); got != 20 {
			t.Errorf("%q: %d respondents, want 20", q.Question, got)
		}
		if len(q.Options) != len(q.Counts) {
			t.Errorf("%q: options/counts mismatch", q.Question)
		}
	}
}

func TestTakeawayPercentages(t *testing.T) {
	qs := TableV()
	// 95% (19/20) found HeadTalk easy.
	easy, err := qs[2].TopTwoFraction()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(easy-0.95) > 1e-9 {
		t.Errorf("ease takeaway %g, want 0.95", easy)
	}
	// 70% (14/20) would deploy it.
	deploy, err := qs[3].TopTwoFraction()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(deploy-0.70) > 1e-9 {
		t.Errorf("deploy takeaway %g, want 0.70", deploy)
	}
	// 70% (14/20) rate it better than existing controls.
	better, err := qs[4].TopTwoFraction()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(better-0.70) > 1e-9 {
		t.Errorf("better takeaway %g, want 0.70", better)
	}
}

func TestFacingHabitSkipsNA(t *testing.T) {
	// 10 of the 15 VA owners face the device often/very often, but the
	// "top two" of the substantive options are "Very less"+"Less"
	// (the favorable-first convention doesn't apply to this neutral
	// question) — verify the N/A skip arithmetic instead.
	q := TableV()[1]
	frac, err := q.TopTwoFraction()
	if err != nil {
		t.Fatal(err)
	}
	// Denominator must be 15 (20 minus 5 N/A).
	if math.Abs(frac-(1.0+4.0)/15.0) > 1e-9 {
		t.Errorf("fraction %g, want 5/15", frac)
	}
}

func TestSUSScoreIdentities(t *testing.T) {
	// All "strongly agree" (5) on positive items and "strongly
	// disagree" (1) on negative items = perfect 100.
	perfect := SUSResponse{5, 1, 5, 1, 5, 1, 5, 1, 5, 1}
	s, err := perfect.Score()
	if err != nil {
		t.Fatal(err)
	}
	if s != 100 {
		t.Errorf("perfect SUS = %g", s)
	}
	worst := SUSResponse{1, 5, 1, 5, 1, 5, 1, 5, 1, 5}
	s, err = worst.Score()
	if err != nil {
		t.Fatal(err)
	}
	if s != 0 {
		t.Errorf("worst SUS = %g", s)
	}
	neutral := SUSResponse{3, 3, 3, 3, 3, 3, 3, 3, 3, 3}
	s, err = neutral.Score()
	if err != nil {
		t.Fatal(err)
	}
	if s != 50 {
		t.Errorf("neutral SUS = %g", s)
	}
}

func TestSUSScoreValidation(t *testing.T) {
	bad := SUSResponse{0, 1, 5, 1, 5, 1, 5, 1, 5, 1}
	if _, err := bad.Score(); err == nil {
		t.Error("expected error for out-of-range answer")
	}
}

func TestScoreAll(t *testing.T) {
	responses := []SUSResponse{
		{5, 1, 5, 1, 5, 1, 5, 1, 5, 1},
		{3, 3, 3, 3, 3, 3, 3, 3, 3, 3},
	}
	sum, err := ScoreAll(responses)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Mean != 75 || sum.N != 2 {
		t.Errorf("summary %+v", sum)
	}
	if sum.CI95 <= 0 {
		t.Error("CI should be positive for varied scores")
	}
	if !sum.AboveAverage() {
		t.Error("75 should clear the 68 benchmark")
	}
	if _, err := ScoreAll(nil); err == nil {
		t.Error("expected error for empty responses")
	}
}

func TestPaperSUS(t *testing.T) {
	ht, existing := PaperSUS()
	if ht.Mean != 77.38 || ht.CI95 != 6.26 || ht.N != 20 {
		t.Errorf("HeadTalk SUS %+v", ht)
	}
	if existing.Mean != 74.75 || existing.CI95 != 8.12 {
		t.Errorf("existing SUS %+v", existing)
	}
	if !ht.AboveAverage() || !existing.AboveAverage() {
		t.Error("both controls clear the benchmark in the paper")
	}
	if ht.Mean <= existing.Mean {
		t.Error("HeadTalk should score above the existing control")
	}
	if s := ht.String(); s == "" {
		t.Error("empty SUS summary string")
	}
}
