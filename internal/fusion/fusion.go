// Package fusion combines per-array wake decisions into one room-level
// accept/reject. A room with several assistant devices hears the same
// utterance from several vantage points; the orientation margin each
// array reports is a signed confidence ("facing me" vs "facing away"),
// and "Head Orientation Estimation with Distributed Microphones Using
// Speech Radiation Patterns" (PAPERS.md) shows that pooling such
// radiation-pattern evidence across arrays beats any single array. This
// package implements the serving-side version of that result: a
// health-weighted vote over per-array posteriors, failing closed when
// no trustworthy evidence survives.
package fusion

import (
	"headtalk/internal/core"
	"headtalk/internal/mic"
)

// ArrayReport is one array's contribution to a room-level decision.
type ArrayReport struct {
	// ArrayID names the contributing device ("kitchen", "tv-left", ...).
	ArrayID string
	// Decision is the array's own pipeline outcome.
	Decision core.Decision
	// Channels is the array's total microphone count, used with
	// Decision.DegradedChannels to derive the health weight. Zero means
	// unknown and yields full health weight.
	Channels int
	// Weight, when > 0, overrides the derived health weight (callers
	// that ran mic.AssessHealth themselves can pass HealthWeight).
	Weight float64
	// Err marks an array whose decision pipeline failed outright; the
	// report contributes no evidence but stays listed for observability.
	Err error
}

// HealthWeight converts an explicit array-health assessment (from
// mic.AssessHealth) into a fusion weight: the healthy-channel fraction.
func HealthWeight(h mic.ArrayHealth) float64 {
	if len(h.Channels) == 0 {
		return 1
	}
	return float64(len(h.Healthy)) / float64(len(h.Channels))
}

// weight derives the report's effective vote weight.
func (r *ArrayReport) weight() float64 {
	if r.Weight > 0 {
		return r.Weight
	}
	if r.Channels <= 0 {
		return 1
	}
	w := float64(r.Channels-r.Decision.DegradedChannels) / float64(r.Channels)
	if w < 0 {
		return 0
	}
	return w
}

// usable reports whether the array produced evidence worth fusing.
// Hard pipeline failures (bad input, panic, breaker, too degraded to
// decide) carry no orientation or liveness posterior — down-weighting
// them to zero is the "degraded arrays down-weighted" rule taken to its
// limit.
func (r *ArrayReport) usable() bool {
	if r.Err != nil {
		return false
	}
	switch r.Decision.Reason {
	case core.ReasonBadInput, core.ReasonDegraded, core.ReasonPanic,
		core.ReasonUnhealthy, core.ReasonProcessingFail:
		return false
	}
	return true
}

// Config tunes the fusion vote.
type Config struct {
	// MinWeight drops arrays whose health weight falls below it
	// (default 0.05).
	MinWeight float64
	// LiveThreshold is the minimum fused live score (default 0.5).
	LiveThreshold float64
	// FacingThreshold is the minimum fused orientation margin
	// (default 0: any net facing evidence accepts).
	FacingThreshold float64
}

func (c *Config) applyDefaults() {
	if c.MinWeight == 0 {
		c.MinWeight = 0.05
	}
	if c.LiveThreshold == 0 {
		c.LiveThreshold = 0.5
	}
}

// RoomDecision is the fused room-level outcome.
type RoomDecision struct {
	Accepted bool
	Reason   core.Reason
	// FusedFacing is the health-weighted mean orientation margin across
	// arrays whose facing gate ran. Each margin is a signed confidence,
	// so a far array near the decision boundary naturally contributes
	// little while a close, certain array dominates.
	FusedFacing float64
	FacingRan   bool
	// FusedLive is the health-weighted mean live score across arrays
	// whose liveness gate ran.
	FusedLive float64
	LiveRan   bool
	// ArraysUsed counts arrays whose evidence entered the vote;
	// ArraysDropped counts reports discarded as failed or too degraded.
	ArraysUsed    int
	ArraysDropped int
	// BestArray is the used array with the strongest single facing
	// margin (for attribution/debugging).
	BestArray string
}

// Fuse combines per-array reports into one room-level decision. It
// fails closed: no usable arrays, or usable arrays without orientation
// evidence, reject rather than accept on silence.
func Fuse(reports []ArrayReport, cfg Config) RoomDecision {
	cfg.applyDefaults()
	var out RoomDecision

	var facingW, facingAcc float64
	var liveW, liveAcc float64
	var bestMargin float64
	for i := range reports {
		r := &reports[i]
		w := r.weight()
		if !r.usable() || w < cfg.MinWeight {
			out.ArraysDropped++
			continue
		}
		// A tenant-level policy outcome on any array is a room-level
		// policy outcome: a muted room stays muted no matter how many
		// arrays heard the wake word, and an already-open session keeps
		// its facing shortcut.
		switch r.Decision.Reason {
		case core.ReasonMuted:
			return RoomDecision{Reason: core.ReasonMuted, ArraysUsed: 1, ArraysDropped: len(reports) - 1, BestArray: r.ArrayID}
		case core.ReasonSessionActive, core.ReasonNormalMode:
			return RoomDecision{Accepted: true, Reason: r.Decision.Reason, ArraysUsed: 1, ArraysDropped: len(reports) - 1, BestArray: r.ArrayID}
		}
		out.ArraysUsed++
		if r.Decision.LiveRan {
			liveAcc += w * r.Decision.LiveScore
			liveW += w
		}
		if r.Decision.FacingRan {
			facingAcc += w * r.Decision.FacingScore
			facingW += w
			if out.BestArray == "" || r.Decision.FacingScore > bestMargin {
				bestMargin = r.Decision.FacingScore
				out.BestArray = r.ArrayID
			}
		}
	}

	if out.ArraysUsed == 0 {
		out.Reason = core.ReasonDegraded
		return out
	}
	if liveW > 0 {
		out.LiveRan = true
		out.FusedLive = liveAcc / liveW
		if out.FusedLive < cfg.LiveThreshold {
			out.Reason = core.ReasonNotLive
			return out
		}
	}
	if facingW == 0 {
		// Arrays decided, but none ran the orientation gate (e.g. no
		// model enrolled anywhere): a privacy control fails closed.
		out.Reason = core.ReasonNoOrientation
		return out
	}
	out.FacingRan = true
	out.FusedFacing = facingAcc / facingW
	if out.FusedFacing <= cfg.FacingThreshold {
		out.Reason = core.ReasonNotFacing
		return out
	}
	out.Accepted = true
	out.Reason = core.ReasonAccepted
	return out
}
