package fusion

import (
	"errors"
	"math"
	"testing"

	"headtalk/internal/core"
	"headtalk/internal/mic"
)

func facing(id string, margin float64, channels, degraded int) ArrayReport {
	return ArrayReport{
		ArrayID:  id,
		Channels: channels,
		Decision: core.Decision{
			Accepted:         margin > 0,
			Reason:           core.ReasonAccepted,
			FacingRan:        true,
			FacingScore:      margin,
			LiveRan:          true,
			LiveScore:        0.9,
			DegradedChannels: degraded,
		},
	}
}

func TestFuseWeightedFacingVote(t *testing.T) {
	// A confident close array outvotes a weakly-contrary far one.
	d := Fuse([]ArrayReport{
		facing("near", 2.0, 4, 0),
		facing("far", -0.3, 4, 0),
	}, Config{})
	if !d.Accepted || d.Reason != core.ReasonAccepted {
		t.Fatalf("fused: %+v", d)
	}
	if want := (2.0 - 0.3) / 2; math.Abs(d.FusedFacing-want) > 1e-12 {
		t.Errorf("fused margin %g, want %g", d.FusedFacing, want)
	}
	if d.BestArray != "near" || d.ArraysUsed != 2 {
		t.Errorf("attribution: %+v", d)
	}

	// Flip the strong evidence: the room rejects.
	d = Fuse([]ArrayReport{
		facing("near", -2.0, 4, 0),
		facing("far", 0.3, 4, 0),
	}, Config{})
	if d.Accepted || d.Reason != core.ReasonNotFacing {
		t.Fatalf("contrary fused: %+v", d)
	}
}

func TestFuseDegradedDownWeighted(t *testing.T) {
	// The degraded array's wrong vote (3 of 4 channels dead, weight
	// 0.25) loses to the healthy array despite a bigger margin.
	d := Fuse([]ArrayReport{
		facing("healthy", 1.0, 4, 0),
		facing("broken", -2.0, 4, 3),
	}, Config{})
	if !d.Accepted {
		t.Fatalf("degraded array overruled healthy one: %+v", d)
	}
	if want := (1.0*1 + 0.25*-2.0) / 1.25; math.Abs(d.FusedFacing-want) > 1e-12 {
		t.Errorf("fused margin %g, want %g", d.FusedFacing, want)
	}

	// Below MinWeight the array is dropped entirely.
	d = Fuse([]ArrayReport{
		facing("healthy", 1.0, 4, 0),
		facing("dead", -5.0, 100, 100),
	}, Config{})
	if !d.Accepted || d.ArraysUsed != 1 || d.ArraysDropped != 1 {
		t.Fatalf("dead array not dropped: %+v", d)
	}
}

func TestFuseFailsClosed(t *testing.T) {
	// No reports at all.
	if d := Fuse(nil, Config{}); d.Accepted || d.Reason != core.ReasonDegraded {
		t.Fatalf("empty fuse: %+v", d)
	}
	// Every array errored or hard-failed.
	d := Fuse([]ArrayReport{
		{ArrayID: "a", Err: errors.New("boom")},
		{ArrayID: "b", Decision: core.Decision{Reason: core.ReasonBadInput}},
		{ArrayID: "c", Decision: core.Decision{Reason: core.ReasonPanic}},
	}, Config{})
	if d.Accepted || d.Reason != core.ReasonDegraded || d.ArraysDropped != 3 {
		t.Fatalf("all-failed fuse: %+v", d)
	}
	// Arrays decided but none ran orientation: reject, don't accept.
	d = Fuse([]ArrayReport{
		{ArrayID: "a", Decision: core.Decision{Reason: core.ReasonNoOrientation}},
	}, Config{})
	if d.Accepted || d.Reason != core.ReasonNoOrientation {
		t.Fatalf("no-orientation fuse: %+v", d)
	}
}

func TestFuseLivenessGate(t *testing.T) {
	a := facing("a", 1.5, 4, 0)
	a.Decision.LiveScore = 0.1
	b := facing("b", 1.0, 4, 0)
	b.Decision.LiveScore = 0.2
	d := Fuse([]ArrayReport{a, b}, Config{})
	if d.Accepted || d.Reason != core.ReasonNotLive {
		t.Fatalf("mechanical audio accepted: %+v", d)
	}
	if !d.LiveRan || math.Abs(d.FusedLive-0.15) > 1e-12 {
		t.Errorf("fused live: %+v", d)
	}
}

func TestFusePolicyShortCircuits(t *testing.T) {
	muted := ArrayReport{ArrayID: "m", Decision: core.Decision{Reason: core.ReasonMuted}}
	d := Fuse([]ArrayReport{facing("a", 3.0, 4, 0), muted}, Config{})
	if d.Accepted || d.Reason != core.ReasonMuted {
		t.Fatalf("muted room accepted: %+v", d)
	}
	session := ArrayReport{ArrayID: "s", Decision: core.Decision{Accepted: true, Reason: core.ReasonSessionActive}}
	d = Fuse([]ArrayReport{session, facing("a", -3.0, 4, 0)}, Config{})
	if !d.Accepted || d.Reason != core.ReasonSessionActive {
		t.Fatalf("open session ignored: %+v", d)
	}
}

func TestHealthWeight(t *testing.T) {
	if w := HealthWeight(mic.ArrayHealth{}); w != 1 {
		t.Errorf("unknown health weight %g, want 1", w)
	}
	h := mic.ArrayHealth{Channels: make([]mic.ChannelHealth, 4), Healthy: []int{0, 2}}
	if w := HealthWeight(h); w != 0.5 {
		t.Errorf("half-healthy weight %g, want 0.5", w)
	}
	// Explicit weight overrides derivation.
	r := facing("x", 1, 4, 4)
	r.Weight = 0.75
	if w := r.weight(); w != 0.75 {
		t.Errorf("override weight %g", w)
	}
}
