package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"math/rand/v2"
	"net"
	"strconv"
	"testing"
	"time"

	"headtalk/internal/audio"
	"headtalk/internal/core"
	"headtalk/internal/features"
	"headtalk/internal/metrics"
	"headtalk/internal/orientation"
	"headtalk/internal/pool"
)

// testRecording is a short 4-channel noise burst — enough to run the
// decision pipeline on a Normal-mode tenant.
func testRecording(seed uint64) *audio.Recording {
	rng := rand.New(rand.NewPCG(seed, 7))
	rec := audio.NewRecording(48000, 4, 4800)
	for c := range rec.Channels {
		for i := range rec.Channels[c] {
			rec.Channels[c][i] = rng.NormFloat64()
		}
	}
	return rec
}

// markedRecording builds a 4-channel recording whose inter-channel
// coherence differs by class (same construction as the core tests):
// "facing" shares one delayed source across channels, "non-facing" is
// independent noise.
func markedRecording(facing bool, seed uint64) *audio.Recording {
	rng := rand.New(rand.NewPCG(seed, 99))
	n := 24000
	rec := audio.NewRecording(48000, 4, n)
	if facing {
		src := make([]float64, n+8)
		for i := range src {
			src[i] = rng.NormFloat64()
		}
		for c := 0; c < 4; c++ {
			copy(rec.Channels[c], src[c:c+n])
			for i := range rec.Channels[c] {
				rec.Channels[c][i] += 0.1 * rng.NormFloat64()
			}
		}
	} else {
		for c := 0; c < 4; c++ {
			for i := range rec.Channels[c] {
				rec.Channels[c][i] = rng.NormFloat64()
			}
		}
	}
	return rec
}

// plainSystem is a Normal-mode system with no trained gates.
func plainSystem(t testing.TB) *core.System {
	t.Helper()
	sys, err := core.NewSystem(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// trainedSystem is a HeadTalk-mode system with a real orientation gate
// trained on extracted features, so snapshots carry a model blob and a
// restored system actually runs the gate.
func trainedSystem(t testing.TB) *core.System {
	t.Helper()
	featCfg := features.DefaultConfig(13, 48000)
	var x [][]float64
	var y []int
	for i := 0; i < 14; i++ {
		facing := i%2 == 1
		f, err := features.Extract(markedRecording(facing, uint64(i)), featCfg)
		if err != nil {
			t.Fatal(err)
		}
		x = append(x, f)
		label := orientation.LabelNonFacing
		if facing {
			label = orientation.LabelFacing
		}
		y = append(y, label)
	}
	m, err := orientation.Train(x, y, orientation.ModelConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystem(core.Config{
		Features:       featCfg,
		Orientation:    m,
		SessionTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.SetMode(core.ModeHeadTalk)
	return sys
}

// testCluster wires N nodes over real localhost TCP. Stalled IDs get a
// listener that accepts and reads but never answers — a peer that is
// reachable yet wedged.
type testCluster struct {
	t     testing.TB
	nodes map[string]*Node
	pools map[string]*pool.Pool
	lns   map[string]net.Listener
	addrs map[string]string
}

type clusterOpts struct {
	tune  func(id string, cfg *Config)
	stall map[string]bool
}

func fastTimings(cfg *Config) {
	cfg.ForwardTimeout = 2 * time.Second
	cfg.DialTimeout = 200 * time.Millisecond
	cfg.RetryBase = 5 * time.Millisecond
	cfg.RetryCap = 20 * time.Millisecond
	cfg.HedgeDelay = 25 * time.Millisecond
	cfg.ProbeInterval = 10 * time.Millisecond
	cfg.ProbeTimeout = 100 * time.Millisecond
	cfg.BreakerCooldown = 20 * time.Millisecond
}

func newTestCluster(t testing.TB, ids []string, opts clusterOpts) *testCluster {
	t.Helper()
	c := &testCluster{
		t:     t,
		nodes: make(map[string]*Node),
		pools: make(map[string]*pool.Pool),
		lns:   make(map[string]net.Listener),
		addrs: make(map[string]string),
	}
	for _, id := range ids {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		c.lns[id] = ln
		c.addrs[id] = ln.Addr().String()
	}
	for _, id := range ids {
		if opts.stall[id] {
			go blackhole(c.lns[id])
			t.Cleanup(func() { c.lns[id].Close() })
			continue
		}
		peers := make(map[string]string)
		for _, other := range ids {
			if other != id {
				peers[other] = c.addrs[other]
			}
		}
		p := pool.New(pool.Config{})
		t.Cleanup(func() { _ = p.Close() })
		cfg := Config{NodeID: id, Pool: p, Peers: peers}
		fastTimings(&cfg)
		if opts.tune != nil {
			opts.tune(id, &cfg)
		}
		n, err := NewNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = n.Close() })
		n.ServeLoop(c.lns[id])
		c.nodes[id] = n
		c.pools[id] = p
	}
	return c
}

// blackhole accepts connections and reads forever without answering.
func blackhole(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go func() {
			buf := make([]byte, 4096)
			for {
				if _, err := conn.Read(buf); err != nil {
					conn.Close()
					return
				}
			}
		}()
	}
}

// tenantOwnedBy finds a tenant ID the given node's ring assigns to
// owner.
func (c *testCluster) tenantOwnedBy(viewer, owner string) string {
	c.t.Helper()
	for i := 0; i < 100000; i++ {
		id := "tenant-" + strconv.Itoa(i)
		if c.nodes[viewer].Owner(id) == owner {
			return id
		}
	}
	c.t.Fatalf("no tenant hashes to %s", owner)
	return ""
}

func (c *testCluster) addTenant(node, tenant string, sys *core.System) {
	c.t.Helper()
	if _, err := c.pools[node].AddTenant(pool.TenantConfig{ID: tenant, System: sys, Workers: 2, QueueSize: 8}); err != nil {
		c.t.Fatal(err)
	}
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t testing.TB, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestDecideLocalAndForwarded: a node serves its own tenant directly
// and transparently forwards a non-owned tenant's decision to the peer
// hosting it, with the forward instrumented.
func TestDecideLocalAndForwarded(t *testing.T) {
	c := newTestCluster(t, []string{"n1", "n2"}, clusterOpts{})
	owned := c.tenantOwnedBy("n1", "n1")
	remote := c.tenantOwnedBy("n1", "n2")
	c.addTenant("n1", owned, plainSystem(t))
	c.addTenant("n2", remote, plainSystem(t))

	d, forwarded, err := c.nodes["n1"].Decide(context.Background(), owned, testRecording(1))
	if err != nil || forwarded || !d.Accepted {
		t.Fatalf("local decide = %+v, forwarded=%v, err=%v", d, forwarded, err)
	}
	d, forwarded, err = c.nodes["n1"].Decide(context.Background(), remote, testRecording(2))
	if err != nil || !forwarded || !d.Accepted {
		t.Fatalf("forwarded decide = %+v, forwarded=%v, err=%v", d, forwarded, err)
	}
	if got := c.nodes["n1"].Metrics().Counter("cluster.forward.total").Value(); got != 1 {
		t.Fatalf("forward.total = %d, want 1", got)
	}
	if got := c.nodes["n1"].Metrics().Histogram("cluster.forward.latency", nil).Count(); got != 1 {
		t.Fatalf("forward.latency count = %d, want 1", got)
	}
	// Both ways: n2 forwards n1's tenant.
	d, forwarded, err = c.nodes["n2"].Decide(context.Background(), owned, testRecording(3))
	if err != nil || !forwarded || !d.Accepted {
		t.Fatalf("reverse forwarded decide = %+v, forwarded=%v, err=%v", d, forwarded, err)
	}
}

// TestForwardRemoteErrorPassthrough: a reachable owner that does not
// host the tenant answers with an application-level error; the caller
// sees a typed RemoteError, not ErrPeerUnavailable, and the local
// breaker stays closed.
func TestForwardRemoteErrorPassthrough(t *testing.T) {
	c := newTestCluster(t, []string{"n1", "n2"}, clusterOpts{})
	ghost := c.tenantOwnedBy("n1", "n2") // owned by n2, hosted nowhere

	_, forwarded, err := c.nodes["n1"].Decide(context.Background(), ghost, testRecording(1))
	if !forwarded {
		t.Fatal("expected a forward")
	}
	var remote *RemoteError
	if !errors.As(err, &remote) || remote.Kind != "unknown_tenant" {
		t.Fatalf("err = %v, want RemoteError{unknown_tenant}", err)
	}
	if errors.Is(err, ErrPeerUnavailable) {
		t.Fatalf("remote app error must not be ErrPeerUnavailable: %v", err)
	}
	if snap := c.nodes["n1"].Metrics().Snapshot(); snap.Gauges["cluster.peer.n2.breaker.state"] != 0 {
		t.Fatal("remote app error tripped the local breaker")
	}
}

// TestForwardDeadPeerFailsFastTyped: with the owning peer's listener
// gone, a forward fails inside the configured deadline with the typed
// ErrPeerUnavailable — never hangs, never panics.
func TestForwardDeadPeerFailsFastTyped(t *testing.T) {
	c := newTestCluster(t, []string{"n1", "n2"}, clusterOpts{})
	remote := c.tenantOwnedBy("n1", "n2")
	c.lns["n2"].Close() // kill the peer's wire
	_ = c.nodes["n2"].Close()

	start := time.Now()
	_, forwarded, err := c.nodes["n1"].Decide(context.Background(), remote, testRecording(1))
	elapsed := time.Since(start)
	if !forwarded || !errors.Is(err, ErrPeerUnavailable) {
		t.Fatalf("dead-peer decide: forwarded=%v err=%v, want ErrPeerUnavailable", forwarded, err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("dead-peer forward took %v, want under the 2s deadline", elapsed)
	}
	if got := c.nodes["n1"].Metrics().Counter("cluster.forward.errors.total").Value(); got == 0 {
		t.Fatal("forward error not counted")
	}
}

// TestProbeMembershipDownAndRevive: consecutive probe failures walk a
// peer alive → suspect → down, the ring rebuilds without it (remap
// counted), and a returning peer is probed back in.
func TestProbeMembershipDownAndRevive(t *testing.T) {
	c := newTestCluster(t, []string{"n1", "n2"}, clusterOpts{})
	n1 := c.nodes["n1"]
	if got := n1.Metrics().Gauge("cluster.ring.members").Value(); got != 2 {
		t.Fatalf("ring members = %d, want 2", got)
	}

	// Kill n2 and start probing on n1.
	addr := c.addrs["n2"]
	c.lns["n2"].Close()
	_ = c.nodes["n2"].Close()
	n1.Start()

	waitFor(t, 5*time.Second, "peer n2 down", func() bool {
		ps := n1.Peers()
		return len(ps) == 1 && ps[0].Health == PeerDown
	})
	if got := n1.Metrics().Gauge("cluster.ring.members").Value(); got != 1 {
		t.Fatalf("ring members after down = %d, want 1", got)
	}
	if got := n1.Metrics().Counter("cluster.remap.total").Value(); got == 0 {
		t.Fatal("ring rebuild did not count remapped keys")
	}
	if !n1.Owns(c.tenantOwnedBy("n1", "n1")) {
		t.Fatal("sole survivor must own everything")
	}

	// Bring a responder back on the same address: the probe loop (via
	// the breaker's half-open window) revives it.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer ln.Close()
	go pingResponder(ln)
	waitFor(t, 5*time.Second, "peer n2 revived", func() bool {
		ps := n1.Peers()
		return len(ps) == 1 && ps[0].Health == PeerAlive
	})
	if got := n1.Metrics().Gauge("cluster.ring.members").Value(); got != 2 {
		t.Fatalf("ring members after revive = %d, want 2", got)
	}
}

// pingResponder answers every request line with a bare ok.
func pingResponder(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go func() {
			defer conn.Close()
			br := bufio.NewReader(conn)
			enc := json.NewEncoder(conn)
			for {
				if _, err := readBoundedLine(br, maxPeerLine); err != nil {
					return
				}
				if err := enc.Encode(peerResponse{OK: true, Node: "revived"}); err != nil {
					return
				}
			}
		}()
	}
}

// TestHedgedDecideWinsOnStalledOwner: the ring owner accepts
// connections but never answers; after HedgeDelay the forward hedges
// to the next ring successor, which hosts the (migrated) tenant and
// answers — the decision returns long before the stalled peer's
// deadline, and the hedge win is counted.
func TestHedgedDecideWinsOnStalledOwner(t *testing.T) {
	c := newTestCluster(t, []string{"self", "stalled", "backup"},
		clusterOpts{stall: map[string]bool{"stalled": true}})
	self := c.nodes["self"]
	tenant := c.tenantOwnedBy("self", "stalled")
	c.addTenant("backup", tenant, plainSystem(t))

	start := time.Now()
	d, forwarded, err := self.Decide(context.Background(), tenant, testRecording(1))
	elapsed := time.Since(start)
	if err != nil || !forwarded || !d.Accepted {
		t.Fatalf("hedged decide = %+v, forwarded=%v, err=%v", d, forwarded, err)
	}
	if elapsed >= self.cfg.ForwardTimeout {
		t.Fatalf("hedged decide took %v — the stalled owner's deadline, not the hedge", elapsed)
	}
	if got := self.Metrics().Counter("cluster.forward.hedge.wins.total").Value(); got != 1 {
		t.Fatalf("hedge wins = %d, want 1", got)
	}
}

// TestSnapshotRestoreMigration: capture a trained tenant through a
// non-owning node (forwarded), restore it locally with
// restore-then-activate, serve it locally from then on, and re-capture
// to the identical checksum — the envelope is stable across a full
// migration hop.
func TestSnapshotRestoreMigration(t *testing.T) {
	c := newTestCluster(t, []string{"n1", "n2"}, clusterOpts{
		tune: func(id string, cfg *Config) {
			cfg.Profile = func(string) (string, string) { return "echo-show", "kitchen" }
		},
	})
	tenant := c.tenantOwnedBy("n1", "n2")
	c.addTenant("n2", tenant, trainedSystem(t))

	env, forwarded, err := c.nodes["n1"].Snapshot(context.Background(), tenant)
	if err != nil || !forwarded {
		t.Fatalf("snapshot: forwarded=%v err=%v", forwarded, err)
	}
	if err := env.Verify(); err != nil {
		t.Fatalf("envelope failed verify after the wire hop: %v", err)
	}
	device, room, err := env.Profile()
	if err != nil || device != "echo-show" || room != "kitchen" {
		t.Fatalf("profile = %q/%q, %v", device, room, err)
	}

	if err := c.nodes["n1"].Restore(context.Background(), env); err != nil {
		t.Fatalf("restore: %v", err)
	}
	// Served locally now — and the restored gate actually runs.
	d, forwarded, err := c.nodes["n1"].Decide(context.Background(), tenant, markedRecording(true, 42))
	if err != nil || forwarded {
		t.Fatalf("post-restore decide: forwarded=%v err=%v", forwarded, err)
	}
	if !d.FacingRan {
		t.Fatalf("restored system skipped the orientation gate: %+v", d)
	}

	tn, ok := c.pools["n1"].Tenant(tenant)
	if !ok {
		t.Fatal("restored tenant missing from local pool")
	}
	env2, err := CaptureTenant(tn, "echo-show", "kitchen")
	if err != nil {
		t.Fatal(err)
	}
	if env2.Checksum != env.Checksum {
		t.Fatalf("re-capture checksum %s != original %s — snapshot not stable across migration", env2.Checksum, env.Checksum)
	}
}

// TestRestoreRejectsDamage: a tampered or version-skewed envelope is
// rejected with the matching typed error and activates nothing.
func TestRestoreRejectsDamage(t *testing.T) {
	c := newTestCluster(t, []string{"n1", "n2"}, clusterOpts{})
	tenant := c.tenantOwnedBy("n1", "n2")
	c.addTenant("n2", tenant, trainedSystem(t))
	env, _, err := c.nodes["n1"].Snapshot(context.Background(), tenant)
	if err != nil {
		t.Fatal(err)
	}

	tampered := *env
	raw := append([]byte(nil), tampered.Payload...)
	raw[len(raw)/2] ^= 0x20
	tampered.Payload = raw
	if err := c.nodes["n1"].Restore(context.Background(), &tampered); !errors.Is(err, ErrSnapshotChecksum) && !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("tampered restore = %v, want checksum/corrupt error", err)
	}

	skewed := *env
	skewed.Version = 99
	if err := c.nodes["n1"].Restore(context.Background(), &skewed); !errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("skewed restore = %v, want ErrSnapshotVersion", err)
	}
	if _, ok := c.pools["n1"].Tenant(tenant); ok {
		t.Fatal("failed restore activated a tenant")
	}
}

// TestWireRestoreJoinLeave: the raw peer wire accepts restore, join and
// leave verbs; join/leave rebuild the ring.
func TestWireRestoreJoinLeave(t *testing.T) {
	c := newTestCluster(t, []string{"n1", "n2"}, clusterOpts{})
	tenant := c.tenantOwnedBy("n1", "n2")
	c.addTenant("n2", tenant, trainedSystem(t))
	env, _, err := c.nodes["n1"].Snapshot(context.Background(), tenant)
	if err != nil {
		t.Fatal(err)
	}

	conn, err := net.Dial("tcp", c.addrs["n1"])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	enc := json.NewEncoder(conn)
	roundTrip := func(req peerRequest) peerResponse {
		t.Helper()
		if err := enc.Encode(req); err != nil {
			t.Fatal(err)
		}
		line, err := readBoundedLine(br, maxPeerLine)
		if err != nil {
			t.Fatal(err)
		}
		var resp peerResponse
		if err := json.Unmarshal(line, &resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}

	if resp := roundTrip(peerRequest{Op: opPing}); !resp.OK || resp.Node != "n1" {
		t.Fatalf("ping = %+v", resp)
	}
	if resp := roundTrip(peerRequest{Op: opRestore, Envelope: env}); !resp.OK {
		t.Fatalf("wire restore = %+v", resp)
	}
	if _, ok := c.pools["n1"].Tenant(tenant); !ok {
		t.Fatal("wire restore did not activate the tenant")
	}
	if resp := roundTrip(peerRequest{Op: opJoin, Node: "n3", Addr: "127.0.0.1:1"}); !resp.OK {
		t.Fatalf("wire join = %+v", resp)
	}
	if got := c.nodes["n1"].Metrics().Gauge("cluster.ring.members").Value(); got != 3 {
		t.Fatalf("ring members after join = %d, want 3", got)
	}
	if resp := roundTrip(peerRequest{Op: opLeave, Node: "n3"}); !resp.OK {
		t.Fatalf("wire leave = %+v", resp)
	}
	if got := c.nodes["n1"].Metrics().Gauge("cluster.ring.members").Value(); got != 2 {
		t.Fatalf("ring members after leave = %d, want 2", got)
	}
	// Unknown ops and oversized tenants answer with typed wire errors,
	// never a dropped conn.
	if resp := roundTrip(peerRequest{Op: "bogus"}); resp.OK || resp.ErrorKind != "pipeline" {
		t.Fatalf("bogus op = %+v", resp)
	}
	if resp := roundTrip(peerRequest{Op: opDecide, Tenant: "nobody", Channels: [][]float64{{0}}}); resp.OK || resp.ErrorKind != "unknown_tenant" {
		t.Fatalf("unknown tenant decide = %+v", resp)
	}
}

// TestNewNodeValidation: bad configurations are rejected up front.
func TestNewNodeValidation(t *testing.T) {
	p := pool.New(pool.Config{})
	defer p.Close()
	if _, err := NewNode(Config{Pool: p}); err == nil {
		t.Fatal("node without an ID accepted")
	}
	if _, err := NewNode(Config{NodeID: "a"}); err == nil {
		t.Fatal("node without a pool accepted")
	}
	if _, err := NewNode(Config{NodeID: "a", Pool: p, Peers: map[string]string{"a": "x"}}); err == nil {
		t.Fatal("self-peering accepted")
	}
	n, err := NewNode(Config{NodeID: "a", Pool: p, Metrics: metrics.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if !n.Owns("anything") {
		t.Fatal("single node must own every tenant")
	}
	if err := n.Join("a", "x"); err == nil {
		t.Fatal("joining self accepted")
	}
	if err := n.Leave("ghost"); err == nil {
		t.Fatal("leaving unknown peer accepted")
	}
}
