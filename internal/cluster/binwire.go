package cluster

// The binary peer frame: a length-prefixed request encoding for the
// two sample-bearing operations (decide, frames), negotiated per peer
// with the hello op and falling back to NDJSON against peers that do
// not speak it. Marshaling multichannel float64 audio through JSON
// costs a decimal render and re-parse per sample and dominates the
// forwarded-decision round trip; the binary frame moves the bulk
// samples as raw IEEE-754 bits and keeps only the small metadata
// header in JSON, so the wire stays extensible where it is cheap and
// flat where it is hot.
//
// Frame layout (all integers and float bits little-endian):
//
//	0xB1 | u32 headerLen | header JSON | u32 nch | nch × (u32 n | n × f64)
//
// The header is the peerRequest with its Channels/Frames stripped; the
// payload re-attaches to the field the op implies. Responses are always
// NDJSON lines — they carry no sample data, and one response shape
// keeps error reporting uniform across both request encodings. A
// server tells the encodings apart by the first byte of each request:
// 0xB1 opens a binary frame, anything else (in practice '{') is a JSON
// line, so both kinds interleave freely on one connection.

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// binaryMagic opens every binary peer frame. It can never begin an
// NDJSON request, which starts with '{' (0x7B) or whitespace.
const binaryMagic = 0xB1

// Binary frame bounds, mirroring maxPeerLine's role on the JSON wire.
const (
	maxBinaryHeader   = 1 << 20 // metadata JSON, sans samples
	maxBinaryChannels = 4096
)

// errBinaryFrame reports a malformed or over-limit binary frame.
// Unlike an oversized JSON line, the remaining frame length cannot be
// trusted, so the connection must be dropped after answering.
var errBinaryFrame = fmt.Errorf("cluster: malformed binary peer frame")

// appendBinaryRequest appends req's binary frame encoding to buf
// (reused across calls for an allocation-free steady state) and
// returns the extended slice. Only sample-bearing ops encode.
func appendBinaryRequest(buf []byte, req *peerRequest) ([]byte, error) {
	var payload [][]float64
	switch req.Op {
	case opDecide:
		payload = req.Channels
	case opFrames:
		payload = req.Frames
	default:
		return nil, fmt.Errorf("cluster: op %q has no binary frame encoding", req.Op)
	}
	header := *req
	header.Channels = nil
	header.Frames = nil
	hdr, err := json.Marshal(&header)
	if err != nil {
		return nil, err
	}
	if len(hdr) > maxBinaryHeader || len(payload) > maxBinaryChannels {
		return nil, errBinaryFrame
	}
	buf = append(buf, binaryMagic)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(hdr)))
	buf = append(buf, hdr...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	for _, ch := range payload {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ch)))
		for _, v := range ch {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
	}
	return buf, nil
}

// readBinaryRequest decodes one binary frame into req. The caller has
// already consumed the magic byte. Any error leaves the stream
// position unknown; the connection must not be reused.
func readBinaryRequest(br *bufio.Reader, req *peerRequest) error {
	hlen, err := readU32(br)
	if err != nil {
		return err
	}
	if hlen > maxBinaryHeader {
		return fmt.Errorf("%w: header %d bytes", errBinaryFrame, hlen)
	}
	hdr := make([]byte, hlen)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return err
	}
	if err := json.Unmarshal(hdr, req); err != nil {
		return fmt.Errorf("%w: %v", errBinaryFrame, err)
	}
	nch, err := readU32(br)
	if err != nil {
		return err
	}
	if nch > maxBinaryChannels {
		return fmt.Errorf("%w: %d channels", errBinaryFrame, nch)
	}
	var total uint64
	payload := make([][]float64, nch)
	for i := range payload {
		n, err := readU32(br)
		if err != nil {
			return err
		}
		total += uint64(n) * 8
		if total > maxPeerLine {
			return fmt.Errorf("%w: %d payload bytes", errBinaryFrame, total)
		}
		ch := make([]float64, n)
		raw := make([]byte, 8*int(n))
		if _, err := io.ReadFull(br, raw); err != nil {
			return err
		}
		for j := range ch {
			ch[j] = math.Float64frombits(binary.LittleEndian.Uint64(raw[j*8:]))
		}
		payload[i] = ch
	}
	switch req.Op {
	case opDecide:
		req.Channels = payload
	case opFrames:
		req.Frames = payload
	default:
		return fmt.Errorf("%w: op %q carries a sample payload", errBinaryFrame, req.Op)
	}
	return nil
}

func readU32(br *bufio.Reader) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(br, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}
