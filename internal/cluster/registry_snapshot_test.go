package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"

	"headtalk/internal/audio"
	"headtalk/internal/core"
	"headtalk/internal/features"
	"headtalk/internal/liveness"
	"headtalk/internal/metrics"
	"headtalk/internal/orientation"
	"headtalk/internal/pool"
	"headtalk/internal/registry"
)

// registryTenant builds a HeadTalk system whose models resolve through
// a real versioned registry: orientation promoted past v1 (so version
// numbers are meaningful, not just "1") plus an enrolled array
// fingerprint.
func registryTenant(t testing.TB) (*core.System, *registry.Registry) {
	t.Helper()
	featCfg := features.DefaultConfig(13, 48000)
	train := func(seedBase uint64) *orientation.Model {
		var x [][]float64
		var y []int
		for i := 0; i < 14; i++ {
			facing := i%2 == 1
			f, err := features.Extract(markedRecording(facing, seedBase+uint64(i)), featCfg)
			if err != nil {
				t.Fatal(err)
			}
			x = append(x, f)
			label := orientation.LabelNonFacing
			if facing {
				label = orientation.LabelFacing
			}
			y = append(y, label)
		}
		m, err := orientation.Train(x, y, orientation.ModelConfig{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}

	reg := registry.New(registry.Config{Metrics: metrics.NewRegistry()})
	if _, err := reg.Install(registry.KindOrientation, train(0)); err != nil {
		t.Fatal(err)
	}
	v2, err := reg.AddModel(registry.KindOrientation, train(100))
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Promote(registry.KindOrientation, v2); err != nil {
		t.Fatal(err)
	}

	var fpRecs []*audio.Recording
	for i := 0; i < 4; i++ {
		fpRecs = append(fpRecs, markedRecording(i%2 == 0, uint64(300+i)))
	}
	fp, err := liveness.TrainArrayFingerprint(fpRecs, liveness.FingerprintConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Install(registry.KindArrayFingerprint, fp); err != nil {
		t.Fatal(err)
	}

	sys, err := core.NewSystem(core.Config{
		Features:       featCfg,
		Models:         reg,
		SessionTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.SetMode(core.ModeHeadTalk)
	return sys, reg
}

// TestRegistrySnapshotRoundTrip: capturing a registry-managed tenant
// embeds the registry's canonical blobs and version numbers; restoring
// on another node rebuilds a live registry serving byte-identical
// models under the same version numbers; re-capture reproduces the
// same checksum.
func TestRegistrySnapshotRoundTrip(t *testing.T) {
	c := newTestCluster(t, []string{"n1", "n2"}, clusterOpts{
		tune: func(id string, cfg *Config) {
			cfg.Profile = func(string) (string, string) { return "echo-show", "kitchen" }
		},
	})
	tenant := c.tenantOwnedBy("n1", "n2")
	sys, srcReg := registryTenant(t)
	if _, err := c.pools["n2"].AddTenant(pool.TenantConfig{
		ID: tenant, System: sys, Models: srcReg, Workers: 2, QueueSize: 8,
	}); err != nil {
		t.Fatal(err)
	}

	env, forwarded, err := c.nodes["n1"].Snapshot(context.Background(), tenant)
	if err != nil || !forwarded {
		t.Fatalf("snapshot: forwarded=%v err=%v", forwarded, err)
	}
	if err := env.Verify(); err != nil {
		t.Fatal(err)
	}

	// The payload carries the registry version map, not just blobs.
	var p struct {
		RegistryVersions map[string]uint64 `json:"registry_versions"`
	}
	if err := json.Unmarshal(env.Payload, &p); err != nil {
		t.Fatal(err)
	}
	if p.RegistryVersions[string(registry.KindOrientation)] != 2 {
		t.Fatalf("captured orientation version %v, want 2 (promoted past v1)", p.RegistryVersions)
	}
	if p.RegistryVersions[string(registry.KindArrayFingerprint)] == 0 {
		t.Fatalf("captured fingerprint version missing: %v", p.RegistryVersions)
	}

	if err := c.nodes["n1"].Restore(context.Background(), env); err != nil {
		t.Fatalf("restore: %v", err)
	}
	tn, ok := c.pools["n1"].Tenant(tenant)
	if !ok {
		t.Fatal("restored tenant missing from local pool")
	}
	restored := tn.Models()
	if restored == nil {
		t.Fatal("restored tenant lost its model registry")
	}

	// Version numbers survive import, and the served blobs are
	// byte-for-byte the source registry's.
	srcVers, gotVers := srcReg.ActiveVersions(), restored.ActiveVersions()
	for _, k := range []registry.Kind{registry.KindOrientation, registry.KindArrayFingerprint} {
		if srcVers[k] != gotVers[k] {
			t.Fatalf("kind %s version %d after restore, want %d", k, gotVers[k], srcVers[k])
		}
		srcBytes, _ := srcReg.ActiveBytes(k)
		gotBytes, _ := restored.ActiveBytes(k)
		if !bytes.Equal(bytes.TrimSpace(srcBytes), bytes.TrimSpace(gotBytes)) {
			t.Fatalf("kind %s blob changed across snapshot round trip", k)
		}
	}

	// The restored gates actually run.
	d, forwarded, err := c.nodes["n1"].Decide(context.Background(), tenant, markedRecording(true, 42))
	if err != nil || forwarded {
		t.Fatalf("post-restore decide: forwarded=%v err=%v", forwarded, err)
	}
	if !d.FacingRan || !d.FingerprintRan {
		t.Fatalf("restored registry gates skipped: %+v", d)
	}

	// Re-capture is checksum-stable: restore did not re-serialize.
	env2, err := CaptureTenant(tn, "echo-show", "kitchen")
	if err != nil {
		t.Fatal(err)
	}
	if env2.Checksum != env.Checksum {
		t.Fatalf("re-capture checksum %s != original %s", env2.Checksum, env.Checksum)
	}
}
