package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// peerWire reads the negotiated wire state of from's client for to.
func (c *testCluster) peerWire(from, to string) int32 {
	c.t.Helper()
	n := c.nodes[from]
	n.mu.RLock()
	defer n.mu.RUnlock()
	p, ok := n.peers[to]
	if !ok {
		c.t.Fatalf("node %s has no peer %s", from, to)
	}
	return p.client.wire.Load()
}

// TestBinaryFrameRoundTrip: a decide request survives the binary
// encode/decode cycle bit-exactly, and the op-implied payload field is
// reattached on the right side.
func TestBinaryFrameRoundTrip(t *testing.T) {
	rec := testRecording(11)
	req := peerRequest{
		Op:         opDecide,
		ID:         "r-1",
		Tenant:     "tenant-roundtrip",
		SampleRate: rec.SampleRate,
		Channels:   rec.Channels,
	}
	buf, err := appendBinaryRequest(nil, &req)
	if err != nil {
		t.Fatal(err)
	}
	if buf[0] != binaryMagic {
		t.Fatalf("frame starts with 0x%02X, want 0x%02X", buf[0], binaryMagic)
	}
	br := bufio.NewReader(bytes.NewReader(buf[1:])) // caller consumes the magic
	var got peerRequest
	if err := readBinaryRequest(br, &got); err != nil {
		t.Fatal(err)
	}
	if got.Op != req.Op || got.ID != req.ID || got.Tenant != req.Tenant || got.SampleRate != req.SampleRate {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Channels) != len(req.Channels) {
		t.Fatalf("channels = %d, want %d", len(got.Channels), len(req.Channels))
	}
	for c := range got.Channels {
		for i := range got.Channels[c] {
			if got.Channels[c][i] != req.Channels[c][i] {
				t.Fatalf("channel %d sample %d = %v, want %v", c, i, got.Channels[c][i], req.Channels[c][i])
			}
		}
	}
	if got.Frames != nil {
		t.Fatalf("decide frame reattached payload to Frames")
	}

	// frames op routes the payload to Frames instead.
	freq := peerRequest{Op: opFrames, Tenant: "t", Session: "s", Frames: [][]float64{{1, 2, 3}, {4, 5}}}
	buf, err = appendBinaryRequest(buf[:0], &freq)
	if err != nil {
		t.Fatal(err)
	}
	var fgot peerRequest
	if err := readBinaryRequest(bufio.NewReader(bytes.NewReader(buf[1:])), &fgot); err != nil {
		t.Fatal(err)
	}
	if fgot.Session != "s" || len(fgot.Frames) != 2 || fgot.Frames[1][1] != 5 || fgot.Channels != nil {
		t.Fatalf("frames round trip = %+v", fgot)
	}

	// Ops without sample payloads have no binary form.
	if _, err := appendBinaryRequest(nil, &peerRequest{Op: opPing}); err == nil {
		t.Fatal("ping encoded as a binary frame")
	}
}

// TestBinaryFrameDecodeBounds: oversized headers, channel counts and
// payloads are rejected before any large allocation happens.
func TestBinaryFrameDecodeBounds(t *testing.T) {
	frame := func(build func(*bytes.Buffer)) *bufio.Reader {
		var b bytes.Buffer
		build(&b)
		return bufio.NewReader(&b)
	}
	u32 := func(b *bytes.Buffer, v uint32) {
		var tmp [4]byte
		binary.LittleEndian.PutUint32(tmp[:], v)
		b.Write(tmp[:])
	}
	var req peerRequest
	if err := readBinaryRequest(frame(func(b *bytes.Buffer) {
		u32(b, maxBinaryHeader+1)
	}), &req); !errors.Is(err, errBinaryFrame) {
		t.Fatalf("oversized header: err = %v", err)
	}
	if err := readBinaryRequest(frame(func(b *bytes.Buffer) {
		hdr, _ := json.Marshal(peerRequest{Op: opDecide})
		u32(b, uint32(len(hdr)))
		b.Write(hdr)
		u32(b, maxBinaryChannels+1)
	}), &req); !errors.Is(err, errBinaryFrame) {
		t.Fatalf("too many channels: err = %v", err)
	}
	if err := readBinaryRequest(frame(func(b *bytes.Buffer) {
		b.WriteString("not json")
	}), &req); err == nil {
		t.Fatal("truncated frame decoded")
	}
	if err := readBinaryRequest(frame(func(b *bytes.Buffer) {
		hdr, _ := json.Marshal(peerRequest{Op: opPing})
		u32(b, uint32(len(hdr)))
		b.Write(hdr)
		u32(b, 0)
	}), &req); !errors.Is(err, errBinaryFrame) {
		t.Fatalf("payload on ping: err = %v", err)
	}
}

// TestMixedWireFederation: binary-capable nodes negotiate the binary
// frame between themselves while a JSON-pinned node interoperates in
// both directions on the fallback, all on the same federation.
func TestMixedWireFederation(t *testing.T) {
	c := newTestCluster(t, []string{"n1", "n2", "legacy"}, clusterOpts{
		tune: func(id string, cfg *Config) {
			if id == "legacy" {
				cfg.DisableBinaryWire = true
			}
		},
	})
	tenants := map[string]string{
		"n1":     c.tenantOwnedBy("n1", "n1"),
		"n2":     c.tenantOwnedBy("n1", "n2"),
		"legacy": c.tenantOwnedBy("n1", "legacy"),
	}
	for node, id := range tenants {
		c.addTenant(node, id, plainSystem(t))
	}
	seed := uint64(100)
	for _, from := range []string{"n1", "n2", "legacy"} {
		for to, tenant := range tenants {
			if to == from {
				continue
			}
			seed++
			d, forwarded, err := c.nodes[from].Decide(context.Background(), tenant, testRecording(seed))
			if err != nil || !forwarded || !d.Accepted {
				t.Fatalf("%s→%s decide = %+v, forwarded=%v, err=%v", from, to, d, forwarded, err)
			}
		}
	}
	// Capable pairs settled on binary; anything touching the pinned
	// node settled on JSON — in both directions.
	if got := c.peerWire("n1", "n2"); got != wireBinary {
		t.Fatalf("n1→n2 wire = %d, want binary", got)
	}
	if got := c.peerWire("n2", "n1"); got != wireBinary {
		t.Fatalf("n2→n1 wire = %d, want binary", got)
	}
	if got := c.peerWire("n1", "legacy"); got != wireJSON {
		t.Fatalf("n1→legacy wire = %d, want JSON", got)
	}
	if got := c.peerWire("legacy", "n1"); got != wireJSON {
		t.Fatalf("legacy→n1 wire = %d, want JSON", got)
	}
}

// TestBinaryFrameBadInputDropsConn: a malformed binary frame gets a
// bad_input answer and then the connection is dropped — the server
// cannot trust stream alignment after a bad frame.
func TestBinaryFrameBadInputDropsConn(t *testing.T) {
	c := newTestCluster(t, []string{"solo"}, clusterOpts{})
	conn, err := net.DialTimeout("tcp", c.addrs["solo"], time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(2 * time.Second))

	// magic + absurd header length
	frame := []byte{binaryMagic, 0xFF, 0xFF, 0xFF, 0x7F}
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	line, err := readBoundedLine(br, maxPeerLine)
	if err != nil {
		t.Fatal(err)
	}
	var resp peerResponse
	if err := json.Unmarshal(line, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.OK || resp.ErrorKind != "bad_input" {
		t.Fatalf("bad frame answered %+v, want bad_input", resp)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		t.Fatalf("conn still open after bad frame: err = %v", err)
	}
}

// TestHelloNegotiation: a hello exchange settles the encoding once; a
// server with the binary wire disabled answers negatively and the
// client pins JSON.
func TestHelloNegotiation(t *testing.T) {
	c := newTestCluster(t, []string{"a", "b"}, clusterOpts{
		tune: func(id string, cfg *Config) {
			if id == "b" {
				cfg.DisableBinaryWire = true
			}
		},
	})
	remote := c.tenantOwnedBy("a", "b")
	c.addTenant("b", remote, plainSystem(t))
	if got := c.peerWire("a", "b"); got != wireUnknown {
		t.Fatalf("wire settled before any forward: %d", got)
	}
	if _, _, err := c.nodes["a"].Decide(context.Background(), remote, testRecording(3)); err != nil {
		t.Fatal(err)
	}
	if got := c.peerWire("a", "b"); got != wireJSON {
		t.Fatalf("a→b wire = %d, want JSON against a disabled server", got)
	}
}
