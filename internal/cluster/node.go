package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"headtalk/internal/audio"
	"headtalk/internal/core"
	"headtalk/internal/metrics"
	"headtalk/internal/pool"
	"headtalk/internal/stream"
	"headtalk/internal/trace"
)

// ErrPeerUnavailable is the typed transport failure of the forwarding
// path: the owning peer could not be reached (dial failure, deadline,
// open per-peer breaker, no live owner on the ring). Application-level
// rejections from a reachable peer are *RemoteError instead. Wrapped
// with peer detail; match with errors.Is.
var ErrPeerUnavailable = errors.New("cluster: peer unavailable")

// PeerHealth is a peer's probe-driven liveness state.
type PeerHealth int

// Peer liveness states. Transitions: Alive → Suspect on the first
// failed probe, Suspect → Down after downAfter consecutive failures
// (ring rebuild), any → Alive on a successful probe (ring rebuild if
// it was Down).
const (
	PeerAlive PeerHealth = iota
	PeerSuspect
	PeerDown
)

// String returns the state name.
func (h PeerHealth) String() string {
	switch h {
	case PeerAlive:
		return "alive"
	case PeerSuspect:
		return "suspect"
	case PeerDown:
		return "down"
	default:
		return "unknown"
	}
}

// downAfter is the consecutive failed-probe count that marks a peer
// Down and removes it from the ring.
const downAfter = 3

// Config assembles a Node. Zero values select the documented defaults.
type Config struct {
	// NodeID names this node on the ring (required, unique per
	// cluster).
	NodeID string
	// Pool is the local serving pool holding this node's owned tenants
	// (required).
	Pool *pool.Pool
	// Peers maps peer node IDs to their peer-listener addresses. The
	// ring is built over NodeID + all peers; peers start Alive.
	Peers map[string]string
	// Metrics receives cluster instrumentation (ring membership, remap
	// count, forward latency, per-peer breaker/liveness/retry/latency).
	// Nil creates a private registry.
	Metrics *metrics.Registry
	// HashReplicas is the virtual-node count per node on the ring
	// (default 64, matching the pool's tenant ring).
	HashReplicas int

	// ForwardTimeout bounds one forwarded request end to end, retries
	// and hedge included (default 2s). The caller's context may tighten
	// it further, never loosen it.
	ForwardTimeout time.Duration
	// DialTimeout bounds one connection attempt (default 500ms).
	DialTimeout time.Duration
	// RetryMax is the transport-failure retry budget per forward
	// (default 2; idempotent operations only).
	RetryMax int
	// RetryBase / RetryCap shape the capped exponential backoff between
	// retries (defaults 25ms / 250ms, ±25% jitter).
	RetryBase time.Duration
	RetryCap  time.Duration
	// HedgeDelay is how long a forwarded decide waits on the owner
	// before firing one hedged attempt at the next ring successor
	// (default 150ms; negative disables hedging).
	HedgeDelay time.Duration
	// MaxInFlight bounds concurrent forwards per peer (default 32);
	// excess forwards queue on the semaphore, bounded by their own
	// deadlines.
	MaxInFlight int
	// DisableBinaryWire pins node-to-node sample payloads (decide /
	// frames requests) to the NDJSON wire. By default this node's
	// clients negotiate the length-prefixed binary frame encoding with
	// each peer (hello op, falling back to JSON against peers that do
	// not speak it), and its server accepts both encodings on one
	// connection; with the flag set, its clients always send JSON and
	// its server answers hello negatively so peers fall back too.
	DisableBinaryWire bool

	// ProbeInterval / ProbeTimeout drive the health prober (defaults
	// 500ms / 250ms). A zero ProbeInterval with no Start call leaves
	// membership static.
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// BreakerThreshold / BreakerCooldown configure each per-peer
	// circuit breaker (defaults 4 consecutive transport failures, 2s
	// cooldown; negative threshold disables).
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// Dialer opens peer connections (tests inject failures or in-memory
	// pipes); nil uses a net.Dialer.
	Dialer func(ctx context.Context, addr string) (net.Conn, error)
	// TenantBuilder turns a restored system into the pool.TenantConfig
	// to activate (the daemon wires workers, queue and streaming here).
	// Nil activates a minimal tenant (ID, System, Metrics).
	TenantBuilder func(env *Envelope, sys *core.System, reg *metrics.Registry) pool.TenantConfig
	// Profile reports the enrollment profile (device, room) to record
	// in captured envelopes; nil records neither.
	Profile func(tenantID string) (device, room string)
}

func (cfg Config) withDefaults() Config {
	if cfg.HashReplicas <= 0 {
		cfg.HashReplicas = 64
	}
	if cfg.ForwardTimeout <= 0 {
		cfg.ForwardTimeout = 2 * time.Second
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 500 * time.Millisecond
	}
	if cfg.RetryMax == 0 {
		cfg.RetryMax = 2
	}
	if cfg.RetryMax < 0 {
		cfg.RetryMax = 0
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 25 * time.Millisecond
	}
	if cfg.RetryCap <= 0 {
		cfg.RetryCap = 250 * time.Millisecond
	}
	if cfg.HedgeDelay == 0 {
		cfg.HedgeDelay = 150 * time.Millisecond
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 32
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 500 * time.Millisecond
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 250 * time.Millisecond
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = 4
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 2 * time.Second
	}
	if cfg.Dialer == nil {
		var d net.Dialer
		cfg.Dialer = func(ctx context.Context, addr string) (net.Conn, error) {
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	return cfg
}

// peerState is one peer's membership record.
type peerState struct {
	id     string
	addr   string
	client *peerClient

	health   PeerHealth
	failures int
	gauge    *metrics.Gauge // cluster.peer.<id>.state
}

// PeerStatus is one peer's externally visible state.
type PeerStatus struct {
	ID     string
	Addr   string
	Health PeerHealth
}

// Node is one member of a headtalkd federation: it owns the tenants
// the ring assigns to its ID, forwards everything else, probes its
// peers and serves the peer wire protocol. All methods are safe for
// concurrent use.
type Node struct {
	cfg Config
	reg *metrics.Registry

	// mu guards peers and ring; the ring itself is immutable.
	mu    sync.RWMutex
	peers map[string]*peerState
	ring  *pool.Ring

	ringMembers *metrics.Gauge
	remap       *metrics.Counter
	forwards    *metrics.Counter
	forwardErrs *metrics.Counter
	forwardLat  *metrics.Histogram
	hedgeWins   *metrics.Counter

	stop    chan struct{}
	started atomic.Bool
	closed  atomic.Bool
	wg      sync.WaitGroup
}

// NewNode validates cfg and assembles a node. Peers start Alive — the
// ring covers the full configured membership until probes say
// otherwise. Call Start to begin probing.
func NewNode(cfg Config) (*Node, error) {
	if cfg.NodeID == "" {
		return nil, fmt.Errorf("cluster: node needs a NodeID")
	}
	if cfg.Pool == nil {
		return nil, fmt.Errorf("cluster: node %q needs a pool", cfg.NodeID)
	}
	if _, dup := cfg.Peers[cfg.NodeID]; dup {
		return nil, fmt.Errorf("cluster: node %q lists itself as a peer", cfg.NodeID)
	}
	cfg = cfg.withDefaults()
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	n := &Node{
		cfg:         cfg,
		reg:         reg,
		peers:       make(map[string]*peerState, len(cfg.Peers)),
		ringMembers: reg.Gauge("cluster.ring.members"),
		remap:       reg.Counter("cluster.remap.total"),
		forwards:    reg.Counter("cluster.forward.total"),
		forwardErrs: reg.Counter("cluster.forward.errors.total"),
		forwardLat:  reg.Histogram("cluster.forward.latency", nil),
		hedgeWins:   reg.Counter("cluster.forward.hedge.wins.total"),
		stop:        make(chan struct{}),
	}
	for id, addr := range cfg.Peers {
		if id == "" || addr == "" {
			return nil, fmt.Errorf("cluster: node %q: peer %q needs an id and address", cfg.NodeID, id)
		}
		n.peers[id] = &peerState{
			id:     id,
			addr:   addr,
			client: newPeerClient(id, addr, &n.cfg, reg),
			health: PeerAlive,
			gauge:  reg.Gauge("cluster.peer." + id + ".state"),
		}
	}
	n.rebuildRingLocked()
	return n, nil
}

// ID returns this node's ring identity.
func (n *Node) ID() string { return n.cfg.NodeID }

// Metrics returns the node's cluster registry.
func (n *Node) Metrics() *metrics.Registry { return n.reg }

// Start launches the health prober. Idempotent.
func (n *Node) Start() {
	if !n.started.CompareAndSwap(false, true) || n.closed.Load() {
		return
	}
	n.wg.Add(1)
	go n.probeLoop()
}

// Close stops probing and drops every peer's idle connections. The
// local pool is NOT closed — it belongs to the caller.
func (n *Node) Close() error {
	if !n.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(n.stop)
	n.wg.Wait()
	n.mu.RLock()
	defer n.mu.RUnlock()
	for _, p := range n.peers {
		p.client.close()
	}
	return nil
}

// rebuildRingLocked reassembles the node ring from self plus every
// not-Down peer, updating the membership gauge and the remap counter
// (probe keys whose owner changed). Callers hold n.mu or have
// exclusive access (NewNode).
func (n *Node) rebuildRingLocked() {
	ids := []string{n.cfg.NodeID}
	for id, p := range n.peers {
		if p.health != PeerDown {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	old := n.ring
	n.ring = pool.BuildRing(ids, n.cfg.HashReplicas)
	n.ringMembers.Set(int64(n.ring.Len()))
	if old != nil {
		if moved := pool.RemapCount(old, n.ring); moved > 0 {
			n.remap.Add(uint64(moved))
		}
	}
}

// Owner reports which node the ring assigns the tenant to.
func (n *Node) Owner(tenantID string) string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.ring.Route(tenantID)
}

// Owns reports whether this node is the tenant's ring owner.
func (n *Node) Owns(tenantID string) bool { return n.Owner(tenantID) == n.cfg.NodeID }

// Peers reports every configured peer's membership state, sorted by
// ID.
func (n *Node) Peers() []PeerStatus {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]PeerStatus, 0, len(n.peers))
	for _, p := range n.peers {
		out = append(out, PeerStatus{ID: p.id, Addr: p.addr, Health: p.health})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Join adds (or re-addresses) a peer and rebuilds the ring. Used by
// the join wire verb and operator tooling.
func (n *Node) Join(id, addr string) error {
	if id == "" || addr == "" {
		return fmt.Errorf("cluster: join needs a node id and address")
	}
	if id == n.cfg.NodeID {
		return fmt.Errorf("cluster: node %q cannot join itself", id)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if old, ok := n.peers[id]; ok {
		if old.addr == addr {
			return nil
		}
		old.client.close()
	}
	n.peers[id] = &peerState{
		id:     id,
		addr:   addr,
		client: newPeerClient(id, addr, &n.cfg, n.reg),
		health: PeerAlive,
		gauge:  n.reg.Gauge("cluster.peer." + id + ".state"),
	}
	n.rebuildRingLocked()
	return nil
}

// Leave removes a peer from membership and the ring.
func (n *Node) Leave(id string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	p, ok := n.peers[id]
	if !ok {
		return fmt.Errorf("cluster: unknown peer %q", id)
	}
	p.client.close()
	delete(n.peers, id)
	n.rebuildRingLocked()
	return nil
}

// probeLoop pings every peer each ProbeInterval and applies the
// alive/suspect/down transitions.
func (n *Node) probeLoop() {
	defer n.wg.Done()
	ticker := time.NewTicker(n.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-ticker.C:
		}
		n.mu.RLock()
		peers := make([]*peerState, 0, len(n.peers))
		for _, p := range n.peers {
			peers = append(peers, p)
		}
		n.mu.RUnlock()
		var wg sync.WaitGroup
		for _, p := range peers {
			wg.Add(1)
			go func(p *peerState) {
				defer wg.Done()
				ctx, cancel := context.WithTimeout(context.Background(), n.cfg.ProbeTimeout)
				defer cancel()
				_, err := p.client.call(ctx, peerRequest{Op: opPing, Node: n.cfg.NodeID}, false)
				var remote *RemoteError
				n.recordProbe(p, err == nil || errors.As(err, &remote))
			}(p)
		}
		wg.Wait()
	}
}

// recordProbe applies one probe outcome. An application-level answer
// counts as alive — the peer's wire is up even if the op failed.
func (n *Node) recordProbe(p *peerState, ok bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, still := n.peers[p.id]; !still {
		return
	}
	if ok {
		p.failures = 0
		wasDown := p.health == PeerDown
		p.health = PeerAlive
		p.gauge.Set(int64(PeerAlive))
		if wasDown {
			n.rebuildRingLocked()
		}
		return
	}
	p.failures++
	switch {
	case p.failures >= downAfter && p.health != PeerDown:
		p.health = PeerDown
		p.gauge.Set(int64(PeerDown))
		n.rebuildRingLocked()
	case p.health == PeerAlive:
		p.health = PeerSuspect
		p.gauge.Set(int64(PeerSuspect))
	}
}

// forwardCandidates returns the live peers that may serve the tenant,
// in ring order (owner first), excluding self and Down peers.
func (n *Node) forwardCandidates(tenantID string) []*peerState {
	n.mu.RLock()
	defer n.mu.RUnlock()
	var out []*peerState
	for _, id := range n.ring.RouteN(tenantID, n.ring.Len()) {
		if id == n.cfg.NodeID {
			continue
		}
		if p, ok := n.peers[id]; ok && p.health != PeerDown {
			out = append(out, p)
		}
		if len(out) == 2 { // owner + one hedge successor is all we use
			break
		}
	}
	return out
}

// Decide serves one decision: locally when this node hosts the tenant,
// otherwise forwarded to the ring owner with deadline, retries and one
// hedged attempt at the next ring successor (idempotent — a decision
// is a pure classification). forwarded reports which path served it.
func (n *Node) Decide(ctx context.Context, tenantID string, rec *audio.Recording) (dec core.Decision, forwarded bool, err error) {
	// Local-first: a tenant restored onto this node is served here even
	// if the ring nominally assigns it elsewhere (migration window).
	if t, ok := n.cfg.Pool.Tenant(tenantID); ok {
		dec, err := t.Engine().Decide(ctx, rec)
		return dec, false, err
	}
	req := peerRequest{
		Op:         opDecide,
		Node:       n.cfg.NodeID,
		Tenant:     tenantID,
		SampleRate: rec.SampleRate,
		Channels:   rec.Channels,
	}
	resp, err := n.forward(ctx, tenantID, req, true)
	if err != nil {
		return core.Decision{}, true, err
	}
	return decisionFromWire(resp.Decision), true, nil
}

// PushFrames feeds one streaming chunk to the tenant's session,
// locally or on the owning peer. Frame pushes mutate session state, so
// forwards run without retries or hedging — at-most-once.
func (n *Node) PushFrames(ctx context.Context, tenantID, sessionID string, frames [][]float64) (res stream.PushResult, forwarded bool, err error) {
	if t, ok := n.cfg.Pool.Tenant(tenantID); ok {
		res, err := t.Engine().PushFrames(ctx, sessionID, frames)
		return res, false, err
	}
	req := peerRequest{Op: opFrames, Node: n.cfg.NodeID, Tenant: tenantID, Session: sessionID, Frames: frames}
	resp, err := n.forward(ctx, tenantID, req, false)
	if err != nil {
		return stream.PushResult{}, true, err
	}
	res = stream.PushResult{Status: statusFromString(resp.Status)}
	if resp.SpotScore != nil {
		res.SpotScore = *resp.SpotScore
	}
	if resp.StreamDecision != nil {
		d := decisionFromWire(resp.StreamDecision)
		res.Decision = &d
	}
	return res, true, nil
}

// EndSession closes the tenant's streaming session, locally or on the
// owning peer (idempotent: ending an absent session reports false).
func (n *Node) EndSession(ctx context.Context, tenantID, sessionID string) (ended bool, forwarded bool, err error) {
	if t, ok := n.cfg.Pool.Tenant(tenantID); ok {
		ended, err := t.Engine().EndSession(sessionID)
		return ended, false, err
	}
	req := peerRequest{Op: opEndSession, Node: n.cfg.NodeID, Tenant: tenantID, Session: sessionID}
	resp, err := n.forward(ctx, tenantID, req, true)
	if err != nil {
		return false, true, err
	}
	return resp.Ended != nil && *resp.Ended, true, nil
}

// Snapshot captures the tenant's envelope, locally or from the owning
// peer (read-only, so forwarded with retries and hedging).
func (n *Node) Snapshot(ctx context.Context, tenantID string) (env *Envelope, forwarded bool, err error) {
	if t, ok := n.cfg.Pool.Tenant(tenantID); ok {
		var device, room string
		if n.cfg.Profile != nil {
			device, room = n.cfg.Profile(tenantID)
		}
		env, err := CaptureTenant(t, device, room)
		return env, false, err
	}
	req := peerRequest{Op: opSnapshot, Node: n.cfg.NodeID, Tenant: tenantID}
	resp, err := n.forward(ctx, tenantID, req, true)
	if err != nil {
		return nil, true, err
	}
	if resp.Envelope == nil {
		return nil, true, fmt.Errorf("%w: peer returned no envelope", ErrSnapshotCorrupt)
	}
	return resp.Envelope, true, nil
}

// Restore activates the envelope's tenant on THIS node with
// restore-then-activate semantics: the whole serving stack (models,
// system, engine) is built and verified first; only then is it swapped
// in over any existing tenant of that ID. A failed restore leaves the
// existing tenant serving untouched.
func (n *Node) Restore(ctx context.Context, env *Envelope) error {
	reg := metrics.NewRegistry()
	sys, models, err := BuildSystemWithModels(env, reg)
	if err != nil {
		return err
	}
	var tcfg pool.TenantConfig
	if n.cfg.TenantBuilder != nil {
		tcfg = n.cfg.TenantBuilder(env, sys, reg)
	} else {
		tcfg = pool.TenantConfig{ID: env.TenantID, System: sys, Metrics: reg}
	}
	if tcfg.Models == nil {
		// Registry-managed captures restore registry-managed: the
		// reconstructed model registry rides along so model_status /
		// promote / rollback keep working on the restored tenant.
		tcfg.Models = models
	}
	if _, err := n.cfg.Pool.ReplaceTenant(ctx, tcfg); err != nil {
		return fmt.Errorf("cluster: activating restored tenant %q: %w", env.TenantID, err)
	}
	return nil
}

// forwardResult carries one attempt's outcome through the hedge race.
type forwardResult struct {
	resp  *peerResponse
	err   error
	hedge bool
}

// forward sends req to the tenant's owning peer, bounded by
// ForwardTimeout (tightened by the caller's ctx, never loosened). With
// hedge true and a second live candidate on the ring, one hedged
// attempt fires after HedgeDelay — or immediately when the primary
// fails — and the first success wins. The whole round trip (retries
// and hedge included) is recorded as one StageForward trace span.
func (n *Node) forward(ctx context.Context, tenantID string, req peerRequest, hedge bool) (*peerResponse, error) {
	tr := trace.FromContext(ctx)
	spanStart := tr.Begin()
	start := time.Now()
	n.forwards.Inc()
	resp, err := n.forwardRace(ctx, tenantID, req, hedge)
	tr.End(trace.StageForward, spanStart)
	n.forwardLat.ObserveDuration(time.Since(start))
	if err != nil {
		n.forwardErrs.Inc()
	}
	return resp, err
}

func (n *Node) forwardRace(ctx context.Context, tenantID string, req peerRequest, hedge bool) (*peerResponse, error) {
	cands := n.forwardCandidates(tenantID)
	if len(cands) == 0 {
		return nil, fmt.Errorf("%w: no live owner for tenant %q", ErrPeerUnavailable, tenantID)
	}
	ctx, cancel := context.WithTimeout(ctx, n.cfg.ForwardTimeout)
	defer cancel()

	if !hedge || len(cands) < 2 || n.cfg.HedgeDelay < 0 {
		return cands[0].client.call(ctx, req, hedge)
	}

	results := make(chan forwardResult, 2)
	launch := func(p *peerState, isHedge bool) {
		go func() {
			resp, err := p.client.call(ctx, req, true)
			results <- forwardResult{resp: resp, err: err, hedge: isHedge}
		}()
	}
	launch(cands[0], false)
	launched, hedgeFired := 1, false
	fireHedge := func() {
		if !hedgeFired {
			hedgeFired = true
			launched++
			launch(cands[1], true)
		}
	}
	timer := time.NewTimer(n.cfg.HedgeDelay)
	defer timer.Stop()

	var primaryErr, hedgeErr error
	for launched > 0 {
		select {
		case r := <-results:
			launched--
			if r.err == nil {
				if r.hedge {
					n.hedgeWins.Inc()
				}
				return r.resp, nil
			}
			var remote *RemoteError
			if errors.As(r.err, &remote) {
				if !r.hedge {
					// The owner answered: its application-level verdict is
					// authoritative, successor opinions are not.
					return nil, r.err
				}
				// A hedge peer that does not host the tenant is expected
				// noise, not an answer; other remote errors from it are
				// real answers worth surfacing if the owner stays silent.
				if remote.Kind == "unknown_tenant" {
					r.err = fmt.Errorf("%w: hedge peer %s does not host %q", ErrPeerUnavailable, cands[1].id, tenantID)
				}
			}
			if r.hedge {
				hedgeErr = r.err
			} else {
				primaryErr = r.err
				fireHedge() // primary transport failure: hedge immediately
			}
		case <-timer.C:
			fireHedge()
		}
	}
	if primaryErr != nil {
		return nil, primaryErr
	}
	return nil, hedgeErr
}
