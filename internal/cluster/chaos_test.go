package cluster

import (
	"context"
	"errors"
	"net"
	"sort"
	"strconv"
	"sync"
	"testing"
	"time"

	"headtalk/internal/faultinject"
	"headtalk/internal/pool"
)

// TestChaosFaultyPeersDoNotHurtLocalTenants is the federation
// isolation proof: one node shares a ring with a dead peer (listener
// gone), a black-hole peer (accepts, never answers) and a drip peer
// (trickles bytes forever). While forwards to all three hammer away
// and fail, the node's locally-owned tenant must see ZERO errors and
// bounded latency — and every failed forward must surface the typed
// ErrPeerUnavailable within the forward deadline. Run under -race by
// the chaos make target.
func TestChaosFaultyPeersDoNotHurtLocalTenants(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test skipped in -short mode")
	}

	hole, err := faultinject.NewBlackHole("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hole.Close()
	drip, err := faultinject.NewDrip("127.0.0.1:0", 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer drip.Close()
	// The dead peer: listen, record the address, hang up.
	deadLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := deadLn.Addr().String()
	deadLn.Close()

	p := pool.New(pool.Config{})
	defer p.Close()
	const forwardTimeout = 300 * time.Millisecond
	cfg := Config{
		NodeID: "self",
		Pool:   p,
		Peers: map[string]string{
			"dead":    deadAddr,
			"stalled": hole.Addr(),
			"drip":    drip.Addr(),
		},
		ForwardTimeout: forwardTimeout,
		DialTimeout:    100 * time.Millisecond,
		RetryBase:      5 * time.Millisecond,
		RetryCap:       20 * time.Millisecond,
		HedgeDelay:     -1, // no hedging: every faulty forward must fail on its own
	}
	n, err := NewNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	// One locally-owned tenant, plus one tenant per faulty peer.
	findOwned := func(owner string) string {
		for i := 0; i < 100000; i++ {
			id := "tenant-" + strconv.Itoa(i)
			if n.Owner(id) == owner {
				return id
			}
		}
		t.Fatalf("no tenant hashes to %s", owner)
		return ""
	}
	local := findOwned("self")
	remoteTenants := map[string]string{}
	for _, peer := range []string{"dead", "stalled", "drip"} {
		remoteTenants[peer] = findOwned(peer)
	}
	if _, err := p.AddTenant(pool.TenantConfig{ID: local, System: plainSystem(t), Workers: 4, QueueSize: 64}); err != nil {
		t.Fatal(err)
	}

	const (
		localCalls   = 120
		forwardCalls = 30 // per faulty peer
	)
	var (
		wg          sync.WaitGroup
		mu          sync.Mutex
		localLats   []time.Duration
		localErrs   []error
		forwardLats []time.Duration
		badErrs     []error
	)

	// Forward hammer: three faulty peers in parallel.
	for _, peer := range []string{"dead", "stalled", "drip"} {
		tenant := remoteTenants[peer]
		wg.Add(1)
		go func(peer, tenant string) {
			defer wg.Done()
			for i := 0; i < forwardCalls; i++ {
				start := time.Now()
				_, forwarded, err := n.Decide(context.Background(), tenant, testRecording(uint64(i)))
				elapsed := time.Since(start)
				mu.Lock()
				forwardLats = append(forwardLats, elapsed)
				if !forwarded || !errors.Is(err, ErrPeerUnavailable) {
					badErrs = append(badErrs, err)
				}
				mu.Unlock()
			}
		}(peer, tenant)
	}

	// Local traffic, concurrent with the chaos.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < localCalls; i++ {
			start := time.Now()
			d, forwarded, err := n.Decide(context.Background(), local, testRecording(uint64(i)))
			elapsed := time.Since(start)
			mu.Lock()
			localLats = append(localLats, elapsed)
			if err != nil || forwarded || !d.Accepted {
				localErrs = append(localErrs, err)
			}
			mu.Unlock()
		}
	}()
	wg.Wait()

	if len(localErrs) != 0 {
		t.Fatalf("local tenant saw %d errors during peer chaos: %v", len(localErrs), localErrs[0])
	}
	if len(badErrs) != 0 {
		t.Fatalf("%d faulty-peer forwards returned something other than ErrPeerUnavailable: %v", len(badErrs), badErrs[0])
	}
	sort.Slice(localLats, func(i, j int) bool { return localLats[i] < localLats[j] })
	p99 := localLats[len(localLats)*99/100]
	if p99 > forwardTimeout {
		t.Fatalf("local p99 %v exceeds the forward deadline %v — peer faults leaked into local serving", p99, forwardTimeout)
	}
	// Every failed forward resolved within the deadline (+ generous
	// scheduling slack): faults fail fast, they do not hang.
	for _, l := range forwardLats {
		if l > forwardTimeout+700*time.Millisecond {
			t.Fatalf("a faulty-peer forward took %v, deadline was %v", l, forwardTimeout)
		}
	}

	// The breakers opened under sustained failure, so late forwards
	// fail without touching the network at all.
	start := time.Now()
	_, _, err = n.Decide(context.Background(), remoteTenants["stalled"], testRecording(999))
	if !errors.Is(err, ErrPeerUnavailable) {
		t.Fatalf("post-chaos forward = %v, want ErrPeerUnavailable", err)
	}
	if elapsed := time.Since(start); elapsed > forwardTimeout {
		t.Fatalf("post-chaos forward took %v — breaker did not fail fast", elapsed)
	}
	snap := n.Metrics().Snapshot()
	open := 0
	for _, peer := range []string{"dead", "stalled", "drip"} {
		if snap.Gauges["cluster.peer."+peer+".breaker.state"] > 0 {
			open++
		}
	}
	if open == 0 {
		t.Fatal("no per-peer breaker opened under sustained transport failure")
	}
}

// TestChaosProbeIsolatesBlackHole: with probing on, a black-hole peer
// is marked down within a few probe cycles and the ring sheds it, so
// later requests for its tenants are owned locally (or fail fast)
// instead of waiting out deadlines.
func TestChaosProbeIsolatesBlackHole(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test skipped in -short mode")
	}
	hole, err := faultinject.NewBlackHole("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hole.Close()

	p := pool.New(pool.Config{})
	defer p.Close()
	cfg := Config{
		NodeID:        "self",
		Pool:          p,
		Peers:         map[string]string{"wedged": hole.Addr()},
		ProbeInterval: 10 * time.Millisecond,
		ProbeTimeout:  50 * time.Millisecond,
		DialTimeout:   100 * time.Millisecond,
	}
	n, err := NewNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	n.Start()

	waitFor(t, 5*time.Second, "black-hole peer marked down", func() bool {
		ps := n.Peers()
		return len(ps) == 1 && ps[0].Health == PeerDown
	})
	if got := n.Metrics().Gauge("cluster.ring.members").Value(); got != 1 {
		t.Fatalf("ring members = %d, want 1 after shedding the wedged peer", got)
	}
	if !n.Owns("any-tenant-at-all") {
		t.Fatal("sole live node must own everything after the rebuild")
	}
}
