package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"net"
	"sync/atomic"
	"time"

	"headtalk/internal/metrics"
	"headtalk/internal/serve"
)

// maxIdleConns bounds the per-peer idle connection pool; excess
// connections are closed rather than cached.
const maxIdleConns = 4

// Peer wire encodings, negotiated once per peer with the hello op and
// cached on the client (wireUnknown until the first sample-bearing
// forward triggers negotiation).
const (
	wireUnknown int32 = iota
	wireBinary
	wireJSON
)

// peerConn is one pooled peer connection with its read buffer and
// encode scratch, which live and die with the connection — pooling
// them together keeps repeat round trips free of the 64 KiB reader
// and frame-buffer allocations.
type peerConn struct {
	net.Conn
	br  *bufio.Reader
	buf []byte
}

// peerClient is the forwarding path to one peer: a small pool of
// reused TCP connections, an in-flight semaphore bounding concurrent
// forwards, capped exponential backoff with jitter between retries,
// and a circuit breaker (the serving engine's consecutive-failure
// breaker, where "failure" means a transport-level round-trip failure
// — a peer that answers with an application error is healthy).
type peerClient struct {
	id   string
	addr string
	cfg  *Config

	breaker  *serve.Breaker
	conns    chan *peerConn
	inflight chan struct{}
	closed   atomic.Bool
	// wire caches the hello-negotiated request encoding for this peer
	// (wireUnknown / wireBinary / wireJSON).
	wire atomic.Int32

	latency *metrics.Histogram // round-trip latency, successful attempts
	retries *metrics.Counter   // re-attempts after a transport failure
}

func newPeerClient(id, addr string, cfg *Config, reg *metrics.Registry) *peerClient {
	prefix := "cluster.peer." + id + "."
	return &peerClient{
		id:       id,
		addr:     addr,
		cfg:      cfg,
		breaker:  serve.NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, nil, reg.Gauge(prefix+"breaker.state")),
		conns:    make(chan *peerConn, maxIdleConns),
		inflight: make(chan struct{}, cfg.MaxInFlight),
		latency:  reg.Histogram(prefix+"forward.latency", nil),
		retries:  reg.Counter(prefix + "retries.total"),
	}
}

// call performs one request/response round trip. With retry true (safe
// for idempotent operations only) a transport failure is retried up to
// RetryMax times with capped exponential backoff plus jitter; an
// application-level error from the peer (ok=false) is returned as a
// *RemoteError immediately and never retried. Every transport failure
// feeds the per-peer breaker; an open breaker fails fast with
// ErrPeerUnavailable without touching the network.
func (c *peerClient) call(ctx context.Context, req peerRequest, retry bool) (*peerResponse, error) {
	select {
	case c.inflight <- struct{}{}:
	case <-ctx.Done():
		return nil, fmt.Errorf("%w: peer %s: %v", ErrPeerUnavailable, c.id, ctx.Err())
	}
	defer func() { <-c.inflight }()

	attempts := 1
	if retry && c.cfg.RetryMax > 0 {
		attempts += c.cfg.RetryMax
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			c.retries.Inc()
			if err := sleepCtx(ctx, backoff(c.cfg.RetryBase, c.cfg.RetryCap, attempt)); err != nil {
				break
			}
		}
		if c.closed.Load() {
			return nil, fmt.Errorf("%w: peer %s: client closed", ErrPeerUnavailable, c.id)
		}
		allowed, probe := c.breaker.Allow()
		if !allowed {
			lastErr = fmt.Errorf("%w: peer %s: breaker open", ErrPeerUnavailable, c.id)
			continue
		}
		// Negotiate the wire encoding behind the breaker gate, so an
		// open breaker still fails fast without touching the network.
		c.maybeNegotiate(ctx, req.Op)
		start := time.Now()
		resp, err := c.roundTrip(ctx, req)
		c.breaker.Record(err == nil, probe)
		if err != nil {
			lastErr = fmt.Errorf("%w: peer %s: %v", ErrPeerUnavailable, c.id, err)
			if ctx.Err() != nil {
				break
			}
			continue
		}
		c.latency.ObserveDuration(time.Since(start))
		if !resp.OK {
			return nil, &RemoteError{Kind: resp.ErrorKind, Msg: resp.Error}
		}
		return resp, nil
	}
	return nil, lastErr
}

// maybeNegotiate settles the peer's request encoding before the first
// sample-bearing forward: one hello round trip asks whether the peer
// accepts binary frames. A negative or error answer (an older peer
// rejects the unknown op) selects JSON; only a transport failure
// leaves the encoding unknown so a later call retries. Ops without a
// binary form never trigger negotiation.
func (c *peerClient) maybeNegotiate(ctx context.Context, op string) {
	if op != opDecide && op != opFrames || c.wire.Load() != wireUnknown {
		return
	}
	if c.cfg.DisableBinaryWire {
		c.wire.Store(wireJSON)
		return
	}
	resp, err := c.roundTrip(ctx, peerRequest{Op: opHello, Binary: true})
	if err != nil {
		return
	}
	if resp.OK && resp.Binary {
		c.wire.Store(wireBinary)
	} else {
		c.wire.Store(wireJSON)
	}
}

// roundTrip writes one request — a binary frame for negotiated
// sample-bearing ops, an NDJSON line otherwise — and reads one NDJSON
// response line on a pooled (or freshly dialed) connection, with every
// byte bounded by the context deadline. Any failure closes the
// connection — a conn whose stream alignment is unknown must never
// return to the pool.
func (c *peerClient) roundTrip(ctx context.Context, req peerRequest) (*peerResponse, error) {
	pc, err := c.getConn(ctx)
	if err != nil {
		return nil, err
	}
	deadline, ok := ctx.Deadline()
	if !ok {
		deadline = time.Now().Add(c.cfg.ForwardTimeout)
	}
	if err := pc.SetDeadline(deadline); err != nil {
		pc.Close()
		return nil, err
	}
	if c.wire.Load() == wireBinary && (req.Op == opDecide || req.Op == opFrames) {
		pc.buf, err = appendBinaryRequest(pc.buf[:0], &req)
	} else {
		var data []byte
		if data, err = json.Marshal(req); err == nil {
			pc.buf = append(append(pc.buf[:0], data...), '\n')
		}
	}
	if err != nil {
		pc.Close()
		return nil, err
	}
	if _, err := pc.Write(pc.buf); err != nil {
		pc.Close()
		return nil, err
	}
	line, err := readBoundedLine(pc.br, maxPeerLine)
	if err != nil {
		pc.Close()
		return nil, err
	}
	// The reader may have buffered bytes past the response line; with
	// the strict one-response-per-request protocol there are none, so
	// the conn can be pooled.
	if pc.br.Buffered() > 0 {
		pc.Close()
		return nil, fmt.Errorf("peer %s sent %d unexpected trailing bytes", c.id, pc.br.Buffered())
	}
	var resp peerResponse
	if err := json.Unmarshal(line, &resp); err != nil {
		pc.Close()
		return nil, fmt.Errorf("decoding peer response: %w", err)
	}
	_ = pc.SetDeadline(time.Time{})
	c.putConn(pc)
	return &resp, nil
}

func (c *peerClient) getConn(ctx context.Context) (*peerConn, error) {
	select {
	case pc := <-c.conns:
		return pc, nil
	default:
	}
	dialCtx, cancel := context.WithTimeout(ctx, c.cfg.DialTimeout)
	defer cancel()
	conn, err := c.cfg.Dialer(dialCtx, c.addr)
	if err != nil {
		return nil, err
	}
	return &peerConn{Conn: conn, br: bufio.NewReaderSize(conn, 64*1024)}, nil
}

func (c *peerClient) putConn(pc *peerConn) {
	if c.closed.Load() {
		pc.Close()
		return
	}
	select {
	case c.conns <- pc:
	default:
		pc.Close()
	}
}

// close drops the idle pool. In-flight round trips finish (or time
// out) on their own connections.
func (c *peerClient) close() {
	if !c.closed.CompareAndSwap(false, true) {
		return
	}
	for {
		select {
		case pc := <-c.conns:
			pc.Close()
		default:
			return
		}
	}
}

// backoff returns the capped exponential delay before retry attempt
// n (n ≥ 1), with ±25% jitter so a fleet of retries against a
// recovering peer does not synchronize.
func backoff(base, cap_ time.Duration, attempt int) time.Duration {
	d := base << (attempt - 1)
	if d > cap_ || d <= 0 {
		d = cap_
	}
	jitter := time.Duration(rand.Int64N(int64(d)/2+1)) - d/4
	return d + jitter
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
