package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"headtalk/internal/audio"
	"headtalk/internal/pool"
)

// Serve accepts peer connections on ln and answers the node-to-node
// NDJSON protocol until the listener is closed. Each connection is
// sequential: one request line, one response line. Dispatch is
// strictly local — a request for a tenant this node does not host is
// answered with unknown_tenant, never re-forwarded, so a stale ring on
// one node can never start a forwarding loop.
func (n *Node) Serve(ln net.Listener) error {
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			n.servePeerConn(conn)
		}()
	}
}

func (n *Node) servePeerConn(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 64*1024)
	enc := json.NewEncoder(conn)
	for {
		// Dispatch on the first byte: 0xB1 opens a binary frame, anything
		// else is an NDJSON line. Responses are NDJSON either way.
		first, err := br.Peek(1)
		if err != nil {
			return // EOF, peer hangup, or transport damage: drop the conn
		}
		var req peerRequest
		resp := peerResponse{OK: true, Node: n.cfg.NodeID}
		if first[0] == binaryMagic {
			_, _ = br.ReadByte()
			if err := readBinaryRequest(br, &req); err != nil {
				// A bad binary frame leaves the stream position unknown:
				// answer, then drop the connection rather than misparse
				// whatever follows.
				_ = enc.Encode(peerResponse{OK: false, ErrorKind: "bad_input", Error: fmt.Sprintf("decoding binary peer frame: %v", err)})
				return
			}
			if err := n.handlePeer(&req, &resp); err != nil {
				resp = peerResponse{OK: false, Node: n.cfg.NodeID, ErrorKind: kindOf(err), Error: err.Error()}
			}
			if err := enc.Encode(resp); err != nil {
				return
			}
			continue
		}
		line, err := readBoundedLine(br, maxPeerLine)
		if err != nil {
			if errors.Is(err, errLineTooLong) {
				// The line was consumed; tell the peer before moving on.
				_ = enc.Encode(peerResponse{OK: false, ErrorKind: "bad_input", Error: errLineTooLong.Error()})
				continue
			}
			return
		}
		if len(line) == 0 {
			continue
		}
		if err := json.Unmarshal(line, &req); err != nil {
			resp = peerResponse{OK: false, ErrorKind: "bad_input", Error: fmt.Sprintf("decoding peer request: %v", err)}
		} else if err := n.handlePeer(&req, &resp); err != nil {
			resp = peerResponse{OK: false, Node: n.cfg.NodeID, ErrorKind: kindOf(err), Error: err.Error()}
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// handlePeer executes one peer request against local state only,
// filling resp on success.
func (n *Node) handlePeer(req *peerRequest, resp *peerResponse) error {
	ctx, cancel := context.WithTimeout(context.Background(), n.cfg.ForwardTimeout)
	defer cancel()
	switch req.Op {
	case opPing:
		return nil
	case opHello:
		resp.Binary = !n.cfg.DisableBinaryWire
		return nil
	case opDecide:
		t, ok := n.cfg.Pool.Tenant(req.Tenant)
		if !ok {
			return fmt.Errorf("%w: %q", pool.ErrUnknownTenant, req.Tenant)
		}
		if len(req.Channels) == 0 {
			return fmt.Errorf("decide for %q carries no audio", req.Tenant)
		}
		dec, err := t.Engine().Decide(ctx, &audio.Recording{SampleRate: req.SampleRate, Channels: req.Channels})
		if err != nil {
			return err
		}
		resp.Decision = decisionToWire(dec)
		return nil
	case opFrames:
		t, ok := n.cfg.Pool.Tenant(req.Tenant)
		if !ok {
			return fmt.Errorf("%w: %q", pool.ErrUnknownTenant, req.Tenant)
		}
		res, err := t.Engine().PushFrames(ctx, req.Session, req.Frames)
		if err != nil {
			return err
		}
		resp.Status = res.Status.String()
		score := res.SpotScore
		resp.SpotScore = &score
		if res.Decision != nil {
			resp.StreamDecision = decisionToWire(*res.Decision)
		}
		return nil
	case opEndSession:
		t, ok := n.cfg.Pool.Tenant(req.Tenant)
		if !ok {
			return fmt.Errorf("%w: %q", pool.ErrUnknownTenant, req.Tenant)
		}
		ended, err := t.Engine().EndSession(req.Session)
		if err != nil {
			return err
		}
		resp.Ended = &ended
		return nil
	case opSnapshot:
		t, ok := n.cfg.Pool.Tenant(req.Tenant)
		if !ok {
			return fmt.Errorf("%w: %q", pool.ErrUnknownTenant, req.Tenant)
		}
		var device, room string
		if n.cfg.Profile != nil {
			device, room = n.cfg.Profile(req.Tenant)
		}
		env, err := CaptureTenant(t, device, room)
		if err != nil {
			return err
		}
		resp.Envelope = env
		return nil
	case opRestore:
		if req.Envelope == nil {
			return fmt.Errorf("%w: restore carries no envelope", ErrSnapshotCorrupt)
		}
		return n.Restore(ctx, req.Envelope)
	case opJoin:
		return n.Join(req.Node, req.Addr)
	case opLeave:
		return n.Leave(req.Node)
	default:
		return fmt.Errorf("unknown peer op %q", req.Op)
	}
}

// ServeLoop runs Serve in a goroutine tied to the node's lifecycle:
// the listener is closed when the node closes. Convenience for daemons
// and tests.
func (n *Node) ServeLoop(ln net.Listener) {
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		<-n.stop
		ln.Close()
	}()
	go func() {
		if err := n.Serve(ln); err != nil && !errors.Is(err, io.EOF) {
			// Accept-loop failures after close are expected; anything else
			// has nowhere to go but the void — the daemon monitors its own
			// listener separately.
			_ = err
		}
	}()
}
