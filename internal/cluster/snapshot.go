package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"strconv"
	"time"

	"headtalk/internal/core"
	"headtalk/internal/features"
	"headtalk/internal/liveness"
	"headtalk/internal/metrics"
	"headtalk/internal/orientation"
	"headtalk/internal/pool"
	"headtalk/internal/registry"
)

// SnapshotVersion is the envelope format this build reads and writes.
const SnapshotVersion = 1

// Typed snapshot errors. Restore failures chain to one of these (or to
// the ml/orientation/liveness load sentinels for blob-level damage) —
// a hostile or truncated envelope must fail with a matchable error,
// never a panic, and never a half-activated tenant.
var (
	// ErrSnapshotVersion: the envelope's format version is not one this
	// build reads.
	ErrSnapshotVersion = errors.New("cluster: unsupported snapshot version")
	// ErrSnapshotChecksum: the payload bytes do not match the recorded
	// checksum (truncation or corruption in transit/storage).
	ErrSnapshotChecksum = errors.New("cluster: snapshot checksum mismatch")
	// ErrSnapshotCorrupt: the envelope or payload failed to decode or
	// is internally inconsistent.
	ErrSnapshotCorrupt = errors.New("cluster: corrupt snapshot")
)

// Envelope is one tenant's portable state: format version, identity,
// and a checksummed payload carrying the trained gates, thresholds and
// profile. The payload stays raw JSON so the checksum is computed over
// exactly the bytes that cross the wire; model serialization is
// byte-stable (serialize → deserialize → serialize is identity), so an
// envelope captured on one node re-captures to the same checksum after
// a restore on another.
type Envelope struct {
	Version  int    `json:"version"`
	TenantID string `json:"tenant"`
	// Checksum is the FNV-64a hash of Payload, hex-encoded.
	Checksum string          `json:"checksum"`
	Payload  json.RawMessage `json:"payload"`
}

// snapshotPayload is the envelope body: everything needed to rebuild
// the tenant's core.System on another node.
type snapshotPayload struct {
	SampleRate        float64 `json:"sample_rate"`
	Mode              string  `json:"mode"`
	LivenessThreshold float64 `json:"liveness_threshold"`
	SessionTimeoutMS  int64   `json:"session_timeout_ms"`
	// Features preserves the GCC lag window and band layout so
	// decision-time extraction on the restoring node agrees with the
	// enrolled model's geometry.
	Features      features.Config `json:"features"`
	ChannelSubset []int           `json:"channel_subset,omitempty"`
	MinChannels   int             `json:"min_channels,omitempty"`
	// Device and Room record the enrollment profile (informational +
	// used by daemons to rebuild streaming geometry).
	Device string `json:"device,omitempty"`
	Room   string `json:"room,omitempty"`
	// Liveness and Orientation are the trained model documents in
	// their own versioned formats (ml/orientation serialize).
	Liveness    json.RawMessage `json:"liveness,omitempty"`
	Orientation json.RawMessage `json:"orientation,omitempty"`
	// OrientationByChannels carries the degraded-array fallback models,
	// keyed by channel count (JSON object keys are strings).
	OrientationByChannels map[string]json.RawMessage `json:"orientation_by_channels,omitempty"`
	// ArrayFingerprint is the enrolled array-signature liveness model
	// (fused ensemble), when trained.
	ArrayFingerprint json.RawMessage `json:"array_fingerprint,omitempty"`
	// RegistryVersions, when present, records the model-registry
	// version number each blob above was serving as at capture time
	// (keyed by registry.Kind). Restore rebuilds a versioned registry
	// with these numbers, so a capture → restore → capture round trip
	// is byte- and version-stable. Absent for static model sets —
	// these fields are additive, so SnapshotVersion stays 1 and old
	// envelopes restore unchanged.
	RegistryVersions map[string]uint64 `json:"registry_versions,omitempty"`
	// EnsembleMode records whether the fused liveness ensemble was
	// armed (fail-closed liveness) on the captured tenant.
	EnsembleMode bool `json:"ensemble_mode,omitempty"`
}

// checksum hashes payload bytes with FNV-64a, hex-encoded.
func checksum(b []byte) string {
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("%016x", h.Sum64())
}

// CaptureTenant snapshots one tenant into an envelope. device and room
// record the enrollment profile (pass "" when unknown). The tenant's
// models are read, not cloned — capture is cheap and safe while the
// tenant keeps serving.
func CaptureTenant(t *pool.Tenant, device, room string) (*Envelope, error) {
	sys := t.System()
	cfg := sys.Config()
	p := snapshotPayload{
		SampleRate:        cfg.SampleRate,
		Mode:              sys.Mode().String(),
		LivenessThreshold: cfg.LivenessThreshold,
		SessionTimeoutMS:  cfg.SessionTimeout.Milliseconds(),
		Features:          cfg.Features,
		ChannelSubset:     cfg.ChannelSubset,
		MinChannels:       cfg.MinChannels,
		Device:            device,
		Room:              room,
	}
	set := sys.ModelSet()
	p.EnsembleMode = set.RequireEnsemble
	if reg := t.Models(); reg != nil {
		// Registry-managed tenant: embed the stored canonical bytes and
		// version numbers directly. No re-serialization happens, so the
		// blob a restored registry serves is byte-for-byte the blob the
		// source registry served, and re-capture reproduces the same
		// envelope checksum.
		p.RegistryVersions = make(map[string]uint64)
		if b, num := reg.ActiveBytes(registry.KindOrientation); b != nil {
			p.Orientation = bytes.TrimSpace(b)
			p.RegistryVersions[string(registry.KindOrientation)] = num
		}
		if b, num := reg.ActiveBytes(registry.KindLiveness); b != nil {
			p.Liveness = bytes.TrimSpace(b)
			p.RegistryVersions[string(registry.KindLiveness)] = num
		}
		if b, num := reg.ActiveBytes(registry.KindArrayFingerprint); b != nil {
			p.ArrayFingerprint = bytes.TrimSpace(b)
			p.RegistryVersions[string(registry.KindArrayFingerprint)] = num
		}
	} else {
		if set.Liveness != nil {
			var buf bytes.Buffer
			if err := set.Liveness.Save(&buf); err != nil {
				return nil, fmt.Errorf("cluster: capturing liveness model for %q: %w", t.ID(), err)
			}
			p.Liveness = bytes.TrimSpace(buf.Bytes())
		}
		if set.Orientation != nil {
			var buf bytes.Buffer
			if err := set.Orientation.Save(&buf); err != nil {
				return nil, fmt.Errorf("cluster: capturing orientation model for %q: %w", t.ID(), err)
			}
			p.Orientation = bytes.TrimSpace(buf.Bytes())
		}
		if set.ArrayFingerprint != nil {
			var buf bytes.Buffer
			if err := set.ArrayFingerprint.Save(&buf); err != nil {
				return nil, fmt.Errorf("cluster: capturing array fingerprint for %q: %w", t.ID(), err)
			}
			p.ArrayFingerprint = bytes.TrimSpace(buf.Bytes())
		}
	}
	if len(set.OrientationByChannels) > 0 {
		p.OrientationByChannels = make(map[string]json.RawMessage, len(set.OrientationByChannels))
		for n, m := range set.OrientationByChannels {
			var buf bytes.Buffer
			if err := m.Save(&buf); err != nil {
				return nil, fmt.Errorf("cluster: capturing %d-channel fallback model for %q: %w", n, t.ID(), err)
			}
			p.OrientationByChannels[strconv.Itoa(n)] = bytes.TrimSpace(buf.Bytes())
		}
	}
	payload, err := json.Marshal(p)
	if err != nil {
		return nil, fmt.Errorf("cluster: encoding snapshot payload for %q: %w", t.ID(), err)
	}
	return &Envelope{
		Version:  SnapshotVersion,
		TenantID: t.ID(),
		Checksum: checksum(payload),
		Payload:  payload,
	}, nil
}

// Verify checks the envelope's format version, identity and payload
// integrity without decoding the payload.
func (e *Envelope) Verify() error {
	if e == nil {
		return fmt.Errorf("%w: nil envelope", ErrSnapshotCorrupt)
	}
	if e.Version != SnapshotVersion {
		return fmt.Errorf("%w: version %d (want %d)", ErrSnapshotVersion, e.Version, SnapshotVersion)
	}
	if e.TenantID == "" {
		return fmt.Errorf("%w: envelope names no tenant", ErrSnapshotCorrupt)
	}
	if len(e.Payload) == 0 {
		return fmt.Errorf("%w: empty payload", ErrSnapshotCorrupt)
	}
	if got := checksum(e.Payload); got != e.Checksum {
		return fmt.Errorf("%w: payload hashes to %s, envelope says %s", ErrSnapshotChecksum, got, e.Checksum)
	}
	return nil
}

// Profile returns the enrollment profile recorded in the envelope
// (device, room; empty when the capturing node knew neither).
func (e *Envelope) Profile() (device, room string, err error) {
	if err := e.Verify(); err != nil {
		return "", "", err
	}
	var p snapshotPayload
	if err := json.Unmarshal(e.Payload, &p); err != nil {
		return "", "", fmt.Errorf("%w: decoding payload: %v", ErrSnapshotCorrupt, err)
	}
	return p.Device, p.Room, nil
}

// parseMode reverses core.Mode.String.
func parseMode(s string) (core.Mode, error) {
	switch s {
	case "normal":
		return core.ModeNormal, nil
	case "mute":
		return core.ModeMute, nil
	case "headtalk":
		return core.ModeHeadTalk, nil
	default:
		return 0, fmt.Errorf("%w: unknown privacy mode %q", ErrSnapshotCorrupt, s)
	}
}

// BuildSystem verifies the envelope and rebuilds the tenant's
// core.System from it: model blobs are decoded through their typed
// loaders (corruption and version skew surface as matchable errors),
// thresholds and feature geometry are restored, and the captured
// privacy mode is applied. metricsReg may be nil. Nothing is activated
// here — the caller swaps the system in only after this fully
// succeeds (restore-then-activate).
func BuildSystem(e *Envelope, metricsReg *metrics.Registry) (*core.System, error) {
	sys, _, err := BuildSystemWithModels(e, metricsReg)
	return sys, err
}

// BuildSystemWithModels is BuildSystem returning, additionally, the
// reconstructed model registry when the envelope was captured from a
// registry-managed tenant (nil for static-model envelopes). The
// registry is re-seeded through ImportActive with the captured version
// numbers and canonical bytes, so a restored tenant's model_status —
// and a re-capture — report exactly what the source node served.
func BuildSystemWithModels(e *Envelope, metricsReg *metrics.Registry) (*core.System, *registry.Registry, error) {
	if err := e.Verify(); err != nil {
		return nil, nil, err
	}
	var p snapshotPayload
	if err := json.Unmarshal(e.Payload, &p); err != nil {
		return nil, nil, fmt.Errorf("%w: decoding payload: %v", ErrSnapshotCorrupt, err)
	}
	mode, err := parseMode(p.Mode)
	if err != nil {
		return nil, nil, err
	}
	cfg := core.Config{
		SampleRate:        p.SampleRate,
		LivenessThreshold: p.LivenessThreshold,
		SessionTimeout:    time.Duration(p.SessionTimeoutMS) * time.Millisecond,
		Features:          p.Features,
		ChannelSubset:     p.ChannelSubset,
		MinChannels:       p.MinChannels,
		Metrics:           metricsReg,
	}
	set := registry.ModelSet{RequireEnsemble: p.EnsembleMode}
	if len(p.Liveness) > 0 {
		det, err := liveness.Load(bytes.NewReader(p.Liveness))
		if err != nil {
			return nil, nil, fmt.Errorf("cluster: snapshot liveness model: %w", err)
		}
		set.Liveness = det
	}
	if len(p.Orientation) > 0 {
		m, err := orientation.Load(bytes.NewReader(p.Orientation))
		if err != nil {
			return nil, nil, fmt.Errorf("cluster: snapshot orientation model: %w", err)
		}
		set.Orientation = m
	}
	if len(p.ArrayFingerprint) > 0 {
		fp, err := liveness.LoadFingerprint(bytes.NewReader(p.ArrayFingerprint))
		if err != nil {
			return nil, nil, fmt.Errorf("cluster: snapshot array fingerprint: %w", err)
		}
		set.ArrayFingerprint = fp
	}
	if len(p.OrientationByChannels) > 0 {
		set.OrientationByChannels = make(map[int]*orientation.Model, len(p.OrientationByChannels))
		for key, blob := range p.OrientationByChannels {
			n, err := strconv.Atoi(key)
			if err != nil || n < 1 {
				return nil, nil, fmt.Errorf("%w: fallback model key %q is not a channel count", ErrSnapshotCorrupt, key)
			}
			m, err := orientation.Load(bytes.NewReader(blob))
			if err != nil {
				return nil, nil, fmt.Errorf("cluster: snapshot %d-channel fallback model: %w", n, err)
			}
			set.OrientationByChannels[n] = m
		}
	}

	var models *registry.Registry
	if len(p.RegistryVersions) > 0 {
		// Registry-managed capture: rebuild a versioned registry from
		// the canonical blobs at their recorded version numbers.
		models = registry.New(registry.Config{Metrics: metricsReg, EnsembleMode: p.EnsembleMode})
		imp := func(k registry.Kind, blob json.RawMessage) error {
			num := p.RegistryVersions[string(k)]
			if len(blob) == 0 || num == 0 {
				return nil
			}
			return models.ImportActive(k, num, blob)
		}
		if err := imp(registry.KindOrientation, p.Orientation); err != nil {
			return nil, nil, fmt.Errorf("cluster: restoring orientation version: %w", err)
		}
		if err := imp(registry.KindLiveness, p.Liveness); err != nil {
			return nil, nil, fmt.Errorf("cluster: restoring liveness version: %w", err)
		}
		if err := imp(registry.KindArrayFingerprint, p.ArrayFingerprint); err != nil {
			return nil, nil, fmt.Errorf("cluster: restoring fingerprint version: %w", err)
		}
		cfg.Models = models
		// The degraded-array fallbacks are not registry-versioned;
		// layer them over the registry's sets via a composite provider.
		if len(set.OrientationByChannels) > 0 {
			cfg.Models = &fallbackProvider{inner: models, fallbacks: set.OrientationByChannels}
		}
	} else {
		cfg.Models = registry.NewStatic(set)
	}
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: rebuilding system: %v", ErrSnapshotCorrupt, err)
	}
	sys.SetMode(mode)
	return sys, models, nil
}

// fallbackProvider overlays static degraded-array fallback models on a
// registry-managed provider (the per-channel-count fallbacks are
// enrollment geometry, not versioned registry state). The overlay is
// applied on a copy, preserving the inner set's immutability.
type fallbackProvider struct {
	inner     registry.Provider
	fallbacks map[int]*orientation.Model
}

func (f *fallbackProvider) ModelSet() *registry.ModelSet {
	set := *f.inner.ModelSet()
	set.OrientationByChannels = f.fallbacks
	return &set
}
