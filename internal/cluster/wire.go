// Package cluster federates several headtalkd nodes into one
// fault-tolerant serving fleet. Tenants are partitioned across nodes on
// a consistent-hash ring (the same FNV-1a ring the pool uses for
// anonymous routing, promoted to node-level ownership); a node serves
// its own tenants locally and forwards requests for everyone else's to
// the owning peer over a pooled, bounded NDJSON client with per-request
// deadlines, capped exponential backoff, a single hedged retry for
// idempotent decisions, and a per-peer circuit breaker. Health probes
// drive membership (alive → suspect → down); a down peer is removed
// from the ring with minimal remap and its forwards fail fast with
// ErrPeerUnavailable — one dead node never stalls another node's
// locally-owned tenants. Versioned, checksummed tenant snapshots move
// enrolled models between nodes with restore-then-activate semantics.
package cluster

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"

	"headtalk/internal/core"
	"headtalk/internal/pool"
	"headtalk/internal/serve"
	"headtalk/internal/stream"
)

// Peer wire operations (NDJSON protocol v3's node-to-node half). One
// request line yields exactly one response line; connections are
// reused sequentially.
const (
	opPing       = "ping"
	opHello      = "hello"
	opDecide     = "decide"
	opFrames     = "frames"
	opEndSession = "end_session"
	opSnapshot   = "snapshot"
	opRestore    = "restore"
	opJoin       = "join"
	opLeave      = "leave"
)

// maxPeerLine bounds one peer request/response line. Snapshot
// envelopes carry whole model documents and decide requests carry
// inline multichannel audio, so the peer limit is far above the
// client-facing 4 MiB request cap.
const maxPeerLine = 32 * 1024 * 1024

// peerRequest is one node-to-node NDJSON request line.
type peerRequest struct {
	Op string `json:"op"`
	// ID correlates request and response in logs; unused by the
	// sequential wire itself.
	ID string `json:"id,omitempty"`
	// Node is the sender for ping, and the subject node for join/leave.
	Node string `json:"node,omitempty"`
	// Addr is the subject node's peer address (join only).
	Addr   string `json:"addr,omitempty"`
	Tenant string `json:"tenant,omitempty"`
	// SampleRate and Channels inline the utterance for decide (one
	// inner array per microphone channel).
	SampleRate float64     `json:"sample_rate,omitempty"`
	Channels   [][]float64 `json:"channels,omitempty"`
	// Session and Frames carry one streaming chunk for frames /
	// end_session.
	Session string      `json:"session,omitempty"`
	Frames  [][]float64 `json:"frames,omitempty"`
	// Envelope is the snapshot document for restore.
	Envelope *Envelope `json:"envelope,omitempty"`
	// Binary advertises, on a hello request, that the sender can emit
	// binary peer frames (see binwire.go).
	Binary bool `json:"binary,omitempty"`
}

// peerDecision is the wire form of a core.Decision.
type peerDecision struct {
	Accepted         bool    `json:"accepted"`
	Reason           string  `json:"reason"`
	LiveScore        float64 `json:"live_score,omitempty"`
	LiveRan          bool    `json:"live_ran,omitempty"`
	FacingScore      float64 `json:"facing_score,omitempty"`
	FacingRan        bool    `json:"facing_ran,omitempty"`
	DegradedChannels int     `json:"degraded_channels,omitempty"`
	RepairedSamples  int     `json:"repaired_samples,omitempty"`
}

func decisionToWire(d core.Decision) *peerDecision {
	return &peerDecision{
		Accepted:         d.Accepted,
		Reason:           string(d.Reason),
		LiveScore:        d.LiveScore,
		LiveRan:          d.LiveRan,
		FacingScore:      d.FacingScore,
		FacingRan:        d.FacingRan,
		DegradedChannels: d.DegradedChannels,
		RepairedSamples:  d.RepairedSamples,
	}
}

func decisionFromWire(d *peerDecision) core.Decision {
	if d == nil {
		return core.Decision{}
	}
	return core.Decision{
		Accepted:         d.Accepted,
		Reason:           core.Reason(d.Reason),
		LiveScore:        d.LiveScore,
		LiveRan:          d.LiveRan,
		FacingScore:      d.FacingScore,
		FacingRan:        d.FacingRan,
		DegradedChannels: d.DegradedChannels,
		RepairedSamples:  d.RepairedSamples,
	}
}

// peerResponse is one node-to-node NDJSON response line.
type peerResponse struct {
	OK bool `json:"ok"`
	// Node echoes the responder's node ID (ping).
	Node string `json:"node,omitempty"`
	// ErrorKind and Error describe an application-level failure (OK
	// false). Transport failures never produce a response line at all.
	ErrorKind string `json:"error_kind,omitempty"`
	Error     string `json:"error,omitempty"`
	// Decision answers decide.
	Decision *peerDecision `json:"decision,omitempty"`
	// Status, SpotScore and StreamDecision answer frames; Ended answers
	// end_session.
	Status         string        `json:"status,omitempty"`
	SpotScore      *float64      `json:"spot_score,omitempty"`
	StreamDecision *peerDecision `json:"stream_decision,omitempty"`
	Ended          *bool         `json:"ended,omitempty"`
	// Envelope answers snapshot.
	Envelope *Envelope `json:"envelope,omitempty"`
	// Binary answers hello: the responder accepts binary peer frames on
	// this and future connections.
	Binary bool `json:"binary,omitempty"`
}

// RemoteError is an application-level failure reported by the owning
// peer: the forward itself worked, the peer's serving stack said no.
// It is deliberately distinct from ErrPeerUnavailable — a remote
// breaker_open or backpressure answer must not trip the local per-peer
// breaker or trigger a retry.
type RemoteError struct {
	// Kind matches the daemon's error_kind vocabulary (unknown_tenant,
	// backpressure, breaker_open, bad_input, closed, pipeline, ...).
	Kind string
	// Msg is the peer's error text.
	Msg string
}

// Error implements error.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("cluster: remote %s: %s", e.Kind, e.Msg)
}

// statusFromString reverses stream.Status.String for forwarded frames
// responses.
func statusFromString(s string) stream.Status {
	for _, st := range []stream.Status{
		stream.StatusInvalid, stream.StatusBuffered, stream.StatusSilent,
		stream.StatusNoWake, stream.StatusSpotted, stream.StatusDecided,
	} {
		if st.String() == s {
			return st
		}
	}
	return stream.StatusInvalid
}

// kindOf classifies a local serving error for the wire's error_kind
// field (the server half of the daemon's errorKind vocabulary).
func kindOf(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, pool.ErrUnknownTenant), errors.Is(err, pool.ErrNoRoute):
		return "unknown_tenant"
	case errors.Is(err, serve.ErrQueueFull):
		return "backpressure"
	case errors.Is(err, serve.ErrBreakerOpen):
		return "breaker_open"
	case errors.Is(err, serve.ErrClosed), errors.Is(err, serve.ErrNotStarted), errors.Is(err, pool.ErrPoolClosed), errors.Is(err, stream.ErrClosed):
		return "closed"
	case errors.Is(err, stream.ErrSessionLimit):
		return "session_limit"
	case errors.Is(err, stream.ErrBadFrame):
		return "bad_input"
	case errors.Is(err, ErrSnapshotVersion), errors.Is(err, ErrSnapshotChecksum), errors.Is(err, ErrSnapshotCorrupt):
		return "snapshot"
	default:
		return "pipeline"
	}
}

// errLineTooLong reports a peer line exceeding maxPeerLine; the line
// has been fully consumed when it is returned.
var errLineTooLong = errors.New("cluster: peer line too long")

// readBoundedLine reads one newline-terminated line of at most max
// bytes (newline excluded, trailing \r trimmed), consuming oversized
// lines to their end so the stream stays aligned. io.EOF is returned
// only with no pending bytes.
func readBoundedLine(br *bufio.Reader, max int) ([]byte, error) {
	var (
		buf       []byte
		oversized bool
	)
	for {
		frag, err := br.ReadSlice('\n')
		if !oversized {
			if len(buf)+len(frag) > max+1 { // +1: the newline itself
				oversized = true
				buf = nil
			} else {
				buf = append(buf, frag...)
			}
		}
		switch err {
		case bufio.ErrBufferFull:
			continue
		case nil, io.EOF:
			if oversized {
				return nil, errLineTooLong
			}
			if err == io.EOF && len(buf) == 0 {
				return nil, io.EOF
			}
			buf = bytes.TrimSuffix(buf, []byte("\n"))
			buf = bytes.TrimSuffix(buf, []byte("\r"))
			return buf, nil
		default:
			return nil, err
		}
	}
}
