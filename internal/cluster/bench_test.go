package cluster

import (
	"context"
	"testing"
)

// BenchmarkForwardOverhead compares a decision served by the local
// pool against the same decision forwarded to a peer over loopback
// TCP — the federation tax: one round trip, conn pool, breaker and
// semaphore included. The json and binary variants isolate the wire
// encoding: json pins the legacy NDJSON frame (samples rendered as
// decimal text), binary negotiates the length-prefixed frame that
// ships raw float64 bits.
func BenchmarkForwardOverhead(b *testing.B) {
	rec := testRecording(1)

	b.Run("local", func(b *testing.B) {
		c := newTestCluster(b, []string{"n1", "n2"}, clusterOpts{})
		tenant := c.tenantOwnedBy("n1", "n1")
		c.addTenant("n1", tenant, plainSystem(b))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := c.nodes["n1"].Decide(context.Background(), tenant, rec); err != nil {
				b.Fatal(err)
			}
		}
	})

	forward := func(b *testing.B, disableBinary bool, wantWire int32) {
		b.Helper()
		c := newTestCluster(b, []string{"n1", "n2"}, clusterOpts{
			tune: func(id string, cfg *Config) { cfg.DisableBinaryWire = disableBinary },
		})
		tenant := c.tenantOwnedBy("n1", "n2")
		c.addTenant("n2", tenant, plainSystem(b))
		// Settle negotiation outside the timed region.
		if _, _, err := c.nodes["n1"].Decide(context.Background(), tenant, rec); err != nil {
			b.Fatal(err)
		}
		if got := c.peerWire("n1", "n2"); got != wantWire {
			b.Fatalf("negotiated wire = %d, want %d", got, wantWire)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, forwarded, err := c.nodes["n1"].Decide(context.Background(), tenant, rec)
			if err != nil {
				b.Fatal(err)
			}
			if !forwarded {
				b.Fatal("expected a forward")
			}
		}
	}

	b.Run("json", func(b *testing.B) { forward(b, true, wireJSON) })
	b.Run("binary", func(b *testing.B) { forward(b, false, wireBinary) })
}
