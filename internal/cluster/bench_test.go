package cluster

import (
	"context"
	"testing"
)

// BenchmarkForwardOverhead compares a decision served by the local
// pool against the same decision forwarded to a peer over loopback
// TCP — the federation tax: one JSON round trip, conn pool, breaker
// and semaphore included.
func BenchmarkForwardOverhead(b *testing.B) {
	rec := testRecording(1)

	b.Run("local", func(b *testing.B) {
		c := newTestCluster(b, []string{"n1", "n2"}, clusterOpts{})
		tenant := c.tenantOwnedBy("n1", "n1")
		c.addTenant("n1", tenant, plainSystem(b))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := c.nodes["n1"].Decide(context.Background(), tenant, rec); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("forwarded", func(b *testing.B) {
		c := newTestCluster(b, []string{"n1", "n2"}, clusterOpts{})
		tenant := c.tenantOwnedBy("n1", "n2")
		c.addTenant("n2", tenant, plainSystem(b))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, forwarded, err := c.nodes["n1"].Decide(context.Background(), tenant, rec)
			if err != nil {
				b.Fatal(err)
			}
			if !forwarded {
				b.Fatal("expected a forward")
			}
		}
	})
}
