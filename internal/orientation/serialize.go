package orientation

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"headtalk/internal/ml"
)

const modelFormatVersion = 1

// Typed load errors, shared with the ml package so callers can match
// version skew vs corruption with one errors.Is regardless of which
// layer of the document failed.
var (
	ErrUnsupportedVersion = ml.ErrUnsupportedVersion
	ErrCorruptModel       = ml.ErrCorruptModel
)

// modelDTO is the on-disk form of a trained orientation model. The
// retained training set is included so incremental retraining
// (§IV-B9) keeps working after a reload.
type modelDTO struct {
	Version int             `json:"version"`
	Config  ModelConfig     `json:"config"`
	Scaler  json.RawMessage `json:"scaler"`
	SVM     json.RawMessage `json:"svm"`
	TrainX  [][]float64     `json:"train_x"`
	TrainY  []int           `json:"train_y"`
}

// Save writes the trained model to w as versioned JSON. Only
// SVM-backed models (the default) are serializable.
func (m *Model) Save(w io.Writer) error {
	if m.svm == nil {
		return fmt.Errorf("orientation: only SVM-backed models can be saved")
	}
	var svmBuf bytes.Buffer
	if err := ml.SaveSVM(&svmBuf, m.svm); err != nil {
		return fmt.Errorf("orientation: serializing SVM: %w", err)
	}
	scalerJSON, err := json.Marshal(m.pipe)
	if err != nil {
		return fmt.Errorf("orientation: serializing scaler: %w", err)
	}
	dto := modelDTO{
		Version: modelFormatVersion,
		Config:  m.cfg,
		Scaler:  scalerJSON,
		SVM:     svmBuf.Bytes(),
		TrainX:  m.trainX,
		TrainY:  m.trainY,
	}
	return json.NewEncoder(w).Encode(dto)
}

// Load reads a model written by Save.
func Load(r io.Reader) (*Model, error) {
	var dto modelDTO
	if err := json.NewDecoder(r).Decode(&dto); err != nil {
		return nil, fmt.Errorf("orientation: decoding model: %w: %v", ErrCorruptModel, err)
	}
	if dto.Version != modelFormatVersion {
		return nil, fmt.Errorf("orientation: %w: model version %d (want %d)", ErrUnsupportedVersion, dto.Version, modelFormatVersion)
	}
	svm, err := ml.LoadSVM(bytes.NewReader(dto.SVM))
	if err != nil {
		return nil, fmt.Errorf("orientation: loading SVM: %w", err)
	}
	pipe, err := ml.RestorePipeline(dto.Scaler, svm)
	if err != nil {
		return nil, fmt.Errorf("orientation: restoring pipeline: %w: %v", ErrCorruptModel, err)
	}
	if len(dto.TrainX) != len(dto.TrainY) {
		return nil, fmt.Errorf("orientation: %w: inconsistent retained training set (%d vs %d)", ErrCorruptModel, len(dto.TrainX), len(dto.TrainY))
	}
	return &Model{
		cfg:    dto.Config,
		pipe:   pipe,
		svm:    svm,
		trainX: dto.TrainX,
		trainY: dto.TrainY,
	}, nil
}
