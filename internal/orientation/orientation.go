// Package orientation decides whether a speaker is facing the voice
// assistant from the acoustic features of one utterance (paper
// §III-B). It defines the four facing/non-facing training-arc
// definitions of Table III, wraps the SVM (or any ml.Classifier) in a
// standardization pipeline, and implements the confidence-filtered
// incremental retraining used for temporal stability (§IV-B9).
package orientation

import (
	"fmt"
	"math"

	"headtalk/internal/geom"
	"headtalk/internal/ml"
)

// Labels.
const (
	LabelNonFacing = 0
	LabelFacing    = 1
)

// Definition is a facing/non-facing training-arc assignment: angles in
// Facing train as class 1, angles in NonFacing as class 0, all other
// angles are borderline and excluded from training (paper §IV-A2).
type Definition struct {
	Name      string
	Facing    []float64
	NonFacing []float64
}

// The paper's four candidate definitions (Table III). Definition4 wins
// and is the default for all sensitivity experiments.
var (
	Definition1 = Definition{
		Name:      "Definition-1",
		Facing:    []float64{0, 15, -15, 30, -30, 45, -45},
		NonFacing: []float64{60, -60, 75, -75, 90, -90, 135, -135, 180},
	}
	Definition2 = Definition{
		Name:      "Definition-2",
		Facing:    []float64{0, 15, -15, 30, -30},
		NonFacing: []float64{60, -60, 75, -75, 90, -90, 135, -135, 180},
	}
	Definition3 = Definition{
		Name:      "Definition-3",
		Facing:    []float64{0, 15, -15, 30, -30},
		NonFacing: []float64{75, -75, 90, -90, 135, -135, 180},
	}
	Definition4 = Definition{
		Name:      "Definition-4",
		Facing:    []float64{0, 15, -15, 30, -30},
		NonFacing: []float64{90, -90, 135, -135, 180},
	}
)

// Definitions returns all four in Table III order.
func Definitions() []Definition {
	return []Definition{Definition1, Definition2, Definition3, Definition4}
}

// Label returns the training label for an exact collection angle and
// whether the angle belongs to the definition's training arcs at all.
func (d Definition) Label(angleDeg float64) (int, bool) {
	a := geom.NormalizeDeg(angleDeg)
	for _, f := range d.Facing {
		if angleEq(a, f) {
			return LabelFacing, true
		}
	}
	for _, n := range d.NonFacing {
		if angleEq(a, n) {
			return LabelNonFacing, true
		}
	}
	return 0, false
}

func angleEq(a, b float64) bool {
	return math.Abs(geom.NormalizeDeg(a-b)) < 0.5
}

// GroundTruthFacing reports whether an angle falls inside HeadTalk's
// forward-facing zone of [-30, 30] degrees (paper §III-B1, Fig. 4b).
// This is the semantic truth used to score borderline angles.
func GroundTruthFacing(angleDeg float64) bool {
	a := geom.NormalizeDeg(angleDeg)
	return a >= -30.5 && a <= 30.5
}

// ModelConfig controls classifier construction.
type ModelConfig struct {
	// C and Gamma parameterize the RBF SVM. Zero values select C=1
	// and gamma=1/d (features are standardized first), the optimum of
	// the cmd/tune grid search on the Table III cell.
	C, Gamma float64
	// Seed drives SMO randomness.
	Seed uint64
}

// Model is a trained facing/non-facing classifier over orientation
// feature vectors.
type Model struct {
	cfg  ModelConfig
	pipe *ml.Pipeline
	svm  *ml.SVM
	// Retained training set for incremental retraining.
	trainX [][]float64
	trainY []int
}

// Train fits a fresh model on feature vectors and labels.
func Train(x [][]float64, y []int, cfg ModelConfig) (*Model, error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, fmt.Errorf("orientation: invalid training set (n=%d, labels=%d)", len(x), len(y))
	}
	c := cfg.C
	if c == 0 {
		c = 1
	}
	gamma := cfg.Gamma
	if gamma == 0 {
		gamma = 1 / float64(len(x[0]))
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	svm := ml.NewSVM(c, ml.RBFKernel{Gamma: gamma})
	svm.Seed = seed
	pipe := ml.NewPipeline(svm)

	m := &Model{cfg: cfg, pipe: pipe, svm: svm}
	m.trainX = append(m.trainX, x...)
	m.trainY = append(m.trainY, y...)
	if err := pipe.Fit(m.trainX, m.trainY); err != nil {
		return nil, fmt.Errorf("orientation: training SVM: %w", err)
	}
	return m, nil
}

// TrainWith fits a model around an arbitrary classifier (for the
// classifier-comparison experiment).
func TrainWith(x [][]float64, y []int, clf ml.Classifier) (*Model, error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, fmt.Errorf("orientation: invalid training set (n=%d, labels=%d)", len(x), len(y))
	}
	pipe := ml.NewPipeline(clf)
	m := &Model{pipe: pipe}
	m.trainX = append(m.trainX, x...)
	m.trainY = append(m.trainY, y...)
	if err := pipe.Fit(m.trainX, m.trainY); err != nil {
		return nil, fmt.Errorf("orientation: training classifier: %w", err)
	}
	return m, nil
}

// FeatureDim returns the feature-vector length the model was trained
// on, or 0 when unknown (a model loaded without its retained training
// set).
func (m *Model) FeatureDim() int {
	if len(m.trainX) == 0 {
		return 0
	}
	return len(m.trainX[0])
}

// CheckFeatures rejects a feature vector the model cannot meaningfully
// score: wrong dimensionality (a degraded array's pair set no longer
// matches the trained one) or non-finite values (an upstream DSP
// fault). Scoring such a vector would yield an arbitrary label, so a
// fail-closed caller must treat the returned error as a reject.
func (m *Model) CheckFeatures(x []float64) error {
	if d := m.FeatureDim(); d != 0 && len(x) != d {
		return fmt.Errorf("orientation: feature vector has %d dims, model trained on %d", len(x), d)
	}
	for i, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("orientation: non-finite feature at index %d", i)
		}
	}
	return nil
}

// Predict returns LabelFacing or LabelNonFacing for one feature
// vector.
func (m *Model) Predict(x []float64) int { return m.pipe.Predict(x) }

// Score returns the continuous facing score (SVM margin or classifier
// probability).
func (m *Model) Score(x []float64) float64 { return m.pipe.Score(x) }

// PredictScore returns Predict and Score from one standardization pass,
// writing the standardized vector into scratch (grown if needed and
// returned for reuse). Bit-identical to calling Predict then Score;
// alloc-free with a warm scratch.
func (m *Model) PredictScore(x, scratch []float64) (int, float64, []float64) {
	return m.pipe.PredictScore(x, scratch)
}

// Confidence returns the calibrated probability that x is facing, used
// by the incremental-learning confidence filter. For non-SVM
// classifiers it falls back to the raw score clipped to [0, 1].
func (m *Model) Confidence(x []float64) float64 {
	if m.svm != nil {
		// The pipeline standardizes internally for Predict/Score, so
		// transform the same way here via Score's Platt calibration.
		p := m.svm.PredictProba(m.standardized(x))
		return p
	}
	s := m.pipe.Score(x)
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// standardized applies the pipeline's fitted scaler to x so the raw
// SVM can be queried directly for Platt-calibrated probabilities.
func (m *Model) standardized(x []float64) []float64 {
	return m.pipe.TransformFeature(x)
}

// Evaluate scores a labeled test set.
func (m *Model) Evaluate(x [][]float64, y []int) (ml.BinaryMetrics, error) {
	if len(x) != len(y) {
		return ml.BinaryMetrics{}, fmt.Errorf("orientation: %d samples vs %d labels", len(x), len(y))
	}
	preds := make([]int, len(x))
	for i := range x {
		preds[i] = m.Predict(x[i])
	}
	return ml.EvaluateBinary(y, preds)
}

// IncrementalUpdate appends high-confidence test samples (confidence >=
// minConfidence for their predicted label) to the training set with
// their predicted labels and rebuilds the model, mirroring §IV-B9's
// periodic rebuild with self-labeled data. It returns how many of the
// candidates were absorbed.
func (m *Model) IncrementalUpdate(candidates [][]float64, minConfidence float64) (int, error) {
	added := 0
	for _, x := range candidates {
		p := m.Confidence(x)
		label := LabelNonFacing
		conf := 1 - p
		if p >= 0.5 {
			label = LabelFacing
			conf = p
		}
		if conf < minConfidence {
			continue
		}
		m.trainX = append(m.trainX, x)
		m.trainY = append(m.trainY, label)
		added++
	}
	if added == 0 {
		return 0, nil
	}
	if err := m.refit(); err != nil {
		return added, err
	}
	return added, nil
}

// AbsorbLabeled appends ground-truth-labeled samples (e.g. a fresh
// enrollment session) and rebuilds.
func (m *Model) AbsorbLabeled(x [][]float64, y []int) error {
	if len(x) != len(y) {
		return fmt.Errorf("orientation: %d samples vs %d labels", len(x), len(y))
	}
	m.trainX = append(m.trainX, x...)
	m.trainY = append(m.trainY, y...)
	return m.refit()
}

// TrainingSize returns the current training-set size.
func (m *Model) TrainingSize() int { return len(m.trainX) }

func (m *Model) refit() error {
	if m.svm != nil {
		c := m.cfg.C
		if c == 0 {
			c = 1
		}
		gamma := m.cfg.Gamma
		if gamma == 0 {
			gamma = 1 / float64(len(m.trainX[0]))
		}
		seed := m.cfg.Seed
		if seed == 0 {
			seed = 1
		}
		svm := ml.NewSVM(c, ml.RBFKernel{Gamma: gamma})
		svm.Seed = seed
		m.svm = svm
		m.pipe = ml.NewPipeline(svm)
	}
	return m.pipe.Fit(m.trainX, m.trainY)
}
