package orientation

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"headtalk/internal/ml"
)

func TestModelSaveLoadRoundTrip(t *testing.T) {
	x, y := blobs(60, 51)
	m, err := Train(x, y, ModelConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	tx, _ := blobs(30, 52)
	for _, xi := range tx {
		if m.Predict(xi) != loaded.Predict(xi) {
			t.Fatal("prediction mismatch after reload")
		}
		if m.Score(xi) != loaded.Score(xi) {
			t.Fatal("score mismatch after reload")
		}
		if m.Confidence(xi) != loaded.Confidence(xi) {
			t.Fatal("confidence mismatch after reload")
		}
	}
	if loaded.TrainingSize() != m.TrainingSize() {
		t.Error("retained training set lost in reload")
	}
	// The reloaded model must still support incremental retraining.
	if _, err := loaded.IncrementalUpdate([][]float64{{1.9, 1.9, 0}}, 0.8); err != nil {
		t.Fatalf("incremental update after reload: %v", err)
	}
}

func TestModelSaveRejectsNonSVM(t *testing.T) {
	x, y := blobs(20, 53)
	m, err := TrainWith(x, y, ml.NewKNN())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err == nil {
		t.Error("expected error for non-SVM model")
	}
}

func TestLoadRejectsBadDocuments(t *testing.T) {
	if _, err := Load(strings.NewReader("garbage")); err == nil {
		t.Error("expected error for garbage")
	}
	if _, err := Load(strings.NewReader(`{"version":42}`)); err == nil {
		t.Error("expected error for unknown version")
	}
}

// TestModelRoundTripByteIdentical: serialize → deserialize → serialize
// must reproduce the exact bytes so snapshot checksums stay stable when
// a tenant migrates between cluster nodes.
func TestModelRoundTripByteIdentical(t *testing.T) {
	x, y := blobs(40, 54)
	m, err := Train(x, y, ModelConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var first bytes.Buffer
	if err := m.Save(&first); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := loaded.Save(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("orientation model round trip not byte-identical")
	}
}

// TestLoadTypedErrors: every load failure chains to one of the shared
// sentinels and never panics, even for truncated or hostile documents.
func TestLoadTypedErrors(t *testing.T) {
	x, y := blobs(40, 55)
	m, err := Train(x, y, ModelConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var valid bytes.Buffer
	if err := m.Save(&valid); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		doc  string
		want error
	}{
		{"empty", "", ErrCorruptModel},
		{"garbage", "][", ErrCorruptModel},
		{"truncated", valid.String()[:valid.Len()/2], ErrCorruptModel},
		{"wrong_version", `{"version":42}`, ErrUnsupportedVersion},
		{"bad_inner_svm", `{"version":1,"config":{},"scaler":{"mean":[],"std":[]},"svm":"bm90IGpzb24=","train_x":[],"train_y":[]}`, ErrCorruptModel},
		{"trainset_mismatch", strings.Replace(valid.String(), `"train_y":[`, `"train_y":[5,`, 1), ErrCorruptModel},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := Load(strings.NewReader(tc.doc))
			if got != nil || !errors.Is(err, tc.want) {
				t.Fatalf("Load(%s) = %v, %v; want errors.Is(err, %v)", tc.name, got, err, tc.want)
			}
		})
	}
}
