package orientation

import (
	"bytes"
	"strings"
	"testing"

	"headtalk/internal/ml"
)

func TestModelSaveLoadRoundTrip(t *testing.T) {
	x, y := blobs(60, 51)
	m, err := Train(x, y, ModelConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	tx, _ := blobs(30, 52)
	for _, xi := range tx {
		if m.Predict(xi) != loaded.Predict(xi) {
			t.Fatal("prediction mismatch after reload")
		}
		if m.Score(xi) != loaded.Score(xi) {
			t.Fatal("score mismatch after reload")
		}
		if m.Confidence(xi) != loaded.Confidence(xi) {
			t.Fatal("confidence mismatch after reload")
		}
	}
	if loaded.TrainingSize() != m.TrainingSize() {
		t.Error("retained training set lost in reload")
	}
	// The reloaded model must still support incremental retraining.
	if _, err := loaded.IncrementalUpdate([][]float64{{1.9, 1.9, 0}}, 0.8); err != nil {
		t.Fatalf("incremental update after reload: %v", err)
	}
}

func TestModelSaveRejectsNonSVM(t *testing.T) {
	x, y := blobs(20, 53)
	m, err := TrainWith(x, y, ml.NewKNN())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err == nil {
		t.Error("expected error for non-SVM model")
	}
}

func TestLoadRejectsBadDocuments(t *testing.T) {
	if _, err := Load(strings.NewReader("garbage")); err == nil {
		t.Error("expected error for garbage")
	}
	if _, err := Load(strings.NewReader(`{"version":42}`)); err == nil {
		t.Error("expected error for unknown version")
	}
}
