package orientation

import (
	"math"
	"math/rand/v2"
	"testing"

	"headtalk/internal/ml"
)

func TestDefinitionLabels(t *testing.T) {
	// Definition-4: ±30 facing, ±90..180 non-facing, ±45..75
	// excluded.
	cases := []struct {
		angle float64
		label int
		ok    bool
	}{
		{0, LabelFacing, true},
		{15, LabelFacing, true},
		{-30, LabelFacing, true},
		{45, 0, false},
		{60, 0, false},
		{75, 0, false},
		{90, LabelNonFacing, true},
		{-135, LabelNonFacing, true},
		{180, LabelNonFacing, true},
		{-180, LabelNonFacing, true}, // normalizes to 180
	}
	for _, c := range cases {
		label, ok := Definition4.Label(c.angle)
		if ok != c.ok || (ok && label != c.label) {
			t.Errorf("Definition4.Label(%g) = (%d, %v), want (%d, %v)", c.angle, label, ok, c.label, c.ok)
		}
	}
}

func TestDefinition1IncludesBorderline45(t *testing.T) {
	if l, ok := Definition1.Label(45); !ok || l != LabelFacing {
		t.Error("Definition-1 should train ±45 as facing")
	}
	if l, ok := Definition2.Label(60); !ok || l != LabelNonFacing {
		t.Error("Definition-2 should train ±60 as non-facing")
	}
	if _, ok := Definition3.Label(60); ok {
		t.Error("Definition-3 should exclude ±60")
	}
}

func TestDefinitionsTableOrder(t *testing.T) {
	defs := Definitions()
	if len(defs) != 4 {
		t.Fatalf("%d definitions", len(defs))
	}
	for i, d := range defs {
		if len(d.Facing) == 0 || len(d.NonFacing) == 0 {
			t.Errorf("definition %d has empty arcs", i)
		}
	}
}

func TestGroundTruthFacing(t *testing.T) {
	for _, a := range []float64{0, 15, -15, 30, -30} {
		if !GroundTruthFacing(a) {
			t.Errorf("%g should be facing", a)
		}
	}
	for _, a := range []float64{45, -45, 90, 135, 180, -60} {
		if GroundTruthFacing(a) {
			t.Errorf("%g should be non-facing", a)
		}
	}
}

// blobs builds separable 3-D features.
func blobs(n int, seed uint64) (x [][]float64, y []int) {
	rng := rand.New(rand.NewPCG(seed, 1))
	for i := 0; i < n; i++ {
		cls := i % 2
		base := -1.5
		if cls == 1 {
			base = 1.5
		}
		x = append(x, []float64{
			base + 0.5*rng.NormFloat64(),
			base + 0.5*rng.NormFloat64(),
			rng.NormFloat64(),
		})
		y = append(y, cls)
	}
	return x, y
}

func TestTrainEvaluate(t *testing.T) {
	x, y := blobs(80, 2)
	m, err := Train(x, y, ModelConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tx, ty := blobs(60, 3)
	metrics, err := m.Evaluate(tx, ty)
	if err != nil {
		t.Fatal(err)
	}
	if metrics.Accuracy() < 0.9 {
		t.Errorf("accuracy %g on separable blobs", metrics.Accuracy())
	}
	if m.TrainingSize() != 80 {
		t.Errorf("training size %d", m.TrainingSize())
	}
}

func TestCheckFeaturesFailsClosed(t *testing.T) {
	x, y := blobs(40, 5)
	m, err := Train(x, y, ModelConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.FeatureDim() != 3 {
		t.Fatalf("FeatureDim = %d, want 3", m.FeatureDim())
	}
	if err := m.CheckFeatures([]float64{0.1, -0.2, 0.3}); err != nil {
		t.Fatalf("well-formed vector rejected: %v", err)
	}
	// Wrong dimensionality: a degraded array's pair set.
	if err := m.CheckFeatures([]float64{0.1, -0.2}); err == nil {
		t.Fatal("2-dim vector accepted by 3-dim model")
	}
	// Non-finite features: upstream DSP fault.
	if err := m.CheckFeatures([]float64{0.1, math.NaN(), 0.3}); err == nil {
		t.Fatal("NaN feature accepted")
	}
	if err := m.CheckFeatures([]float64{0.1, math.Inf(1), 0.3}); err == nil {
		t.Fatal("Inf feature accepted")
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, nil, ModelConfig{}); err == nil {
		t.Error("expected error on empty training set")
	}
	if _, err := Train([][]float64{{1}}, []int{0, 1}, ModelConfig{}); err == nil {
		t.Error("expected error on length mismatch")
	}
}

func TestConfidenceCalibrated(t *testing.T) {
	x, y := blobs(80, 4)
	m, err := Train(x, y, ModelConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	deepPos := m.Confidence([]float64{1.5, 1.5, 0})
	deepNeg := m.Confidence([]float64{-1.5, -1.5, 0})
	if deepPos < 0.8 {
		t.Errorf("deep facing confidence %g", deepPos)
	}
	if deepNeg > 0.2 {
		t.Errorf("deep non-facing confidence %g", deepNeg)
	}
}

func TestIncrementalUpdateAbsorbsConfident(t *testing.T) {
	x, y := blobs(60, 5)
	m, err := Train(x, y, ModelConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	before := m.TrainingSize()
	// Deep in-class candidates are high-confidence.
	candidates := [][]float64{{1.8, 1.8, 0}, {-1.8, -1.8, 0}}
	added, err := m.IncrementalUpdate(candidates, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if added != 2 {
		t.Errorf("absorbed %d, want 2", added)
	}
	if m.TrainingSize() != before+2 {
		t.Errorf("training size %d", m.TrainingSize())
	}
	// Boundary candidates should be filtered.
	added, err = m.IncrementalUpdate([][]float64{{0, 0, 0}}, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if added != 0 {
		t.Errorf("boundary candidate absorbed (added=%d)", added)
	}
}

func TestAbsorbLabeled(t *testing.T) {
	x, y := blobs(40, 6)
	m, err := Train(x, y, ModelConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	nx, ny := blobs(10, 7)
	if err := m.AbsorbLabeled(nx, ny); err != nil {
		t.Fatal(err)
	}
	if m.TrainingSize() != 50 {
		t.Errorf("training size %d, want 50", m.TrainingSize())
	}
	if err := m.AbsorbLabeled(nx, ny[:1]); err == nil {
		t.Error("expected length-mismatch error")
	}
}

func TestTrainWithAlternativeClassifier(t *testing.T) {
	x, y := blobs(60, 8)
	m, err := TrainWith(x, y, ml.NewKNN())
	if err != nil {
		t.Fatal(err)
	}
	tx, ty := blobs(40, 9)
	metrics, err := m.Evaluate(tx, ty)
	if err != nil {
		t.Fatal(err)
	}
	if metrics.Accuracy() < 0.9 {
		t.Errorf("kNN-backed model accuracy %g", metrics.Accuracy())
	}
	// Confidence falls back to clipped score for non-SVM models.
	if c := m.Confidence(tx[0]); c < 0 || c > 1 {
		t.Errorf("confidence %g outside [0,1]", c)
	}
}
